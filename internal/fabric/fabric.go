// Package fabric simulates the cluster interconnect the paper's testbed
// ran on (PCs on 100 Mb Ethernet under MPICH).
//
// The fabric provides, per ordered rank pair, a FIFO link with a latency
// and bandwidth model and a bounded in-flight buffer; across links,
// arrival order is unconstrained — exactly the non-determinism the TDI
// protocol exploits. It also owns the failure semantics the rollback
// recovery protocols are built against:
//
//   - Kill(rank) drops the rank's volatile state: everything sitting in
//     its inbox is lost, and its receivers are unblocked with ok=false.
//   - Messages that arrive while the destination is dead are parked and
//     handed to the incarnation after Revive — modelling the MPI layer's
//     retry, and producing the paper's "sender blocks until the receiver
//     recovers" behaviour for rendezvous sends.
//   - Rendezvous (blocking) sends return only when the destination's
//     inbox has accepted the message; buffered sends return as soon as
//     the link's bounded buffer has space (and block while it is full,
//     modelling the limited communication-subsystem memory the paper
//     blames for send-side blocking on large messages).
package fabric

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"windar/internal/clock"
	"windar/internal/obs"
	"windar/internal/wire"
)

// Config describes the interconnect.
type Config struct {
	// N is the number of ranks.
	N int
	// BaseLatency is the per-message propagation delay.
	BaseLatency time.Duration
	// BytesPerSecond is the per-link bandwidth; 0 means infinite.
	BytesPerSecond int64
	// JitterFraction adds a uniform random extra delay in
	// [0, JitterFraction·(base+transmission)]. Cross-link reordering
	// needs no jitter (links are independent), but jitter makes arrival
	// interleavings less regular, like a real network.
	JitterFraction float64
	// LinkBufferBytes bounds the bytes in flight per link; a buffered
	// send blocks while the link is over this. 0 means a generous
	// default.
	LinkBufferBytes int64
	// Seed makes jitter reproducible. Each link derives its own RNG.
	Seed int64
	// BatchBytes, when positive, lets a link coalesce consecutive queued
	// messages up to this many bytes into one serviced transfer (one
	// latency charge for the whole batch — the simulated analogue of the
	// TCP transport's batched write). 0 or negative services messages
	// one at a time, preserving the per-message timing the figure
	// experiments are calibrated against.
	BatchBytes int64
	// Batch, if non-nil, records per-sender batch occupancy (frames per
	// serviced transfer).
	Batch *obs.Family
	// Clock defaults to the real clock.
	Clock clock.Clock
}

// DefaultLinkBuffer is used when Config.LinkBufferBytes is zero.
const DefaultLinkBuffer = 1 << 20

// ErrAborted is returned by Send when the caller's abort channel fires
// while the send is blocked (its own rank was killed).
var ErrAborted = errors.New("fabric: send aborted")

// Fabric is the simulated interconnect. Create with New, release with
// Close.
type Fabric struct {
	cfg   Config
	clk   clock.Clock
	links []*link      // n*n, indexed from*n+to
	ranks []*rankState // destination-side state

	// instant is true when the configured network model never delays a
	// message (zero latency, infinite bandwidth, no batch coalescing):
	// Send may then bypass the link goroutine entirely and deliver
	// inline, saving two goroutine hand-offs per message.
	instant bool

	closeOnce sync.Once
	closed    chan struct{}
}

// New builds the fabric and starts one delivery goroutine per link (they
// are created lazily on first use).
func New(cfg Config) *Fabric {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("fabric: invalid N=%d", cfg.N))
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.LinkBufferBytes == 0 {
		cfg.LinkBufferBytes = DefaultLinkBuffer
	}
	f := &Fabric{
		cfg:    cfg,
		clk:    cfg.Clock,
		links:  make([]*link, cfg.N*cfg.N),
		ranks:  make([]*rankState, cfg.N),
		closed: make(chan struct{}),
	}
	f.instant = cfg.BaseLatency == 0 && cfg.BytesPerSecond <= 0 && cfg.BatchBytes <= 0
	for i := range f.ranks {
		f.ranks[i] = newRankState()
	}
	for from := 0; from < cfg.N; from++ {
		for to := 0; to < cfg.N; to++ {
			l := &link{
				f:      f,
				to:     to,
				maxBuf: cfg.LinkBufferBytes,
				rng:    rand.New(rand.NewSource(cfg.Seed ^ int64(from*cfg.N+to)*0x5851F42D4C957F2D ^ 0x5DEECE66D)),
				batch:  cfg.Batch.Rank(from),
			}
			l.cond = sync.NewCond(&l.mu)
			f.links[from*cfg.N+to] = l
			go l.run()
		}
	}
	return f
}

// N returns the number of ranks.
func (f *Fabric) N() int { return f.cfg.N }

// Close stops all delivery goroutines. Pending messages are dropped.
func (f *Fabric) Close() {
	f.closeOnce.Do(func() {
		close(f.closed)
		for _, l := range f.links {
			l.mu.Lock()
			l.cond.Broadcast()
			l.mu.Unlock()
		}
		for _, r := range f.ranks {
			r.mu.Lock()
			r.aliveCond.Broadcast()
			r.mu.Unlock()
			r.inbox().closeBox()
		}
	})
}

// SendOpts controls one Send call.
type SendOpts struct {
	// Rendezvous makes Send return only once the destination inbox has
	// accepted the envelope (the synchronous MPI mode of Fig. 4(a)).
	Rendezvous bool
	// Abort unblocks a blocked Send with ErrAborted when it fires —
	// used when the sending rank itself is killed.
	Abort <-chan struct{}
}

// Send transmits env. The envelope is handed off as-is; the fabric
// encodes it once for size accounting and transmission timing but the
// receiver gets the decoded form, so wire round-tripping is exercised on
// every message.
func (f *Fabric) Send(env *wire.Envelope, opts SendOpts) error {
	if env.From < 0 || env.From >= f.cfg.N || env.To < 0 || env.To >= f.cfg.N {
		return fmt.Errorf("fabric: bad endpoints %d->%d", env.From, env.To)
	}
	l := f.links[env.From*f.cfg.N+env.To]
	if f.instant && l.tryInline(env) {
		// Delivered synchronously: a rendezvous send's acceptance
		// condition (destination inbox took the message) already holds.
		return nil
	}
	buf := wire.GetBuf()
	*buf = wire.AppendEncode((*buf)[:0], env)
	it := &item{bytes: *buf, size: int64(len(*buf)), buf: buf}
	if opts.Rendezvous {
		it.done = make(chan struct{})
	}
	if err := l.enqueue(it, opts.Abort, f.closed); err != nil {
		return err
	}
	if it.done != nil {
		select {
		case <-it.done:
		case <-opts.Abort:
			return ErrAborted
		case <-f.closed:
			return ErrAborted
		}
	}
	return nil
}

// TrySend delivers env synchronously when the network model is instant
// and the destination's link is idle and deliverable right now; false
// means the caller must use Send, which owns blocking and parking.
func (f *Fabric) TrySend(env *wire.Envelope) bool {
	if !f.instant || env.From < 0 || env.From >= f.cfg.N || env.To < 0 || env.To >= f.cfg.N {
		return false
	}
	return f.links[env.From*f.cfg.N+env.To].tryInline(env)
}

// Recv blocks until an envelope is available for rank, the rank is killed
// (ok=false), or the fabric is closed (ok=false). Each call observes the
// rank's *current* inbox: after a Kill, blocked receivers drain out with
// ok=false and the incarnation's receivers see only post-revival traffic.
//
// A long-lived receiver loop must use Inbox instead: re-calling Recv
// after a Kill/Revive would silently attach the old receiver to the new
// incarnation's inbox.
func (f *Fabric) Recv(rank int) (*wire.Envelope, bool) {
	return f.ranks[rank].inbox().recv()
}

// Inbox is a receiver handle pinned to one incarnation's message queue.
// Once the rank is killed, Recv on the old handle returns ok=false
// forever; the incarnation must obtain a fresh handle.
type Inbox struct{ box *inboxT }

// Recv blocks for the next envelope on this handle's queue; ok=false
// means the queue was closed (rank killed or fabric shut down).
func (in Inbox) Recv() (*wire.Envelope, bool) { return in.box.recv() }

// RecvBatch implements transport.BatchInbox: it blocks like Recv for the
// first envelope, then drains whatever else is already queued — up to
// buf's capacity — without blocking again. Like Recv, a killed rank's
// handle returns ok=false immediately (its queue died with the
// incarnation); only a fabric-shutdown close still drains what was
// queued before it.
func (in Inbox) RecvBatch(buf []*wire.Envelope) ([]*wire.Envelope, bool) {
	return in.box.recvBatch(buf)
}

// Inbox returns a handle pinned to rank's current inbox.
func (f *Fabric) Inbox(rank int) Inbox {
	return Inbox{box: f.ranks[rank].inbox()}
}

// Kill marks rank dead, dropping its inbox contents and unblocking its
// receivers. Messages subsequently arriving for it are parked until
// Revive.
func (f *Fabric) Kill(rank int) {
	r := f.ranks[rank]
	r.mu.Lock()
	r.alive = false
	old := r.box
	r.box = newInbox()
	r.mu.Unlock()
	old.dropBox()
	// Senders blocked on full link buffers may hold this rank's abort
	// channel; wake them so they can observe it. Kills are rare, so a
	// global broadcast is fine.
	for _, l := range f.links {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// Revive brings rank back (as a new incarnation) and releases any parked
// deliveries destined to it.
func (f *Fabric) Revive(rank int) {
	r := f.ranks[rank]
	r.mu.Lock()
	r.alive = true
	r.aliveCond.Broadcast()
	r.mu.Unlock()
}

// Stall suspends delivery into rank: messages park at the links as
// during a dead window, but the rank's inbox and receivers stay
// attached — a transient partition in front of the rank, not a crash.
// Independent of Kill/Revive; pair every Stall with an Unstall.
func (f *Fabric) Stall(rank int) {
	r := f.ranks[rank]
	r.mu.Lock()
	r.stalled = true
	r.mu.Unlock()
}

// Unstall resumes delivery into rank, releasing parked messages in
// per-link FIFO order.
func (f *Fabric) Unstall(rank int) {
	r := f.ranks[rank]
	r.mu.Lock()
	r.stalled = false
	r.aliveCond.Broadcast()
	r.mu.Unlock()
}

// Alive reports whether rank is currently alive.
func (f *Fabric) Alive(rank int) bool {
	r := f.ranks[rank]
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.alive
}

// InFlight reports the number of messages queued or in transit across all
// links (diagnostics and tests).
func (f *Fabric) InFlight() int {
	total := 0
	for _, l := range f.links {
		l.mu.Lock()
		total += len(l.queue) + l.busy
		l.mu.Unlock()
	}
	return total
}

// item is one in-flight message.
type item struct {
	bytes []byte
	size  int64
	buf   *[]byte       // pooled backing of bytes, returned after decode
	done  chan struct{} // non-nil for rendezvous sends
}

// link is one ordered-pair FIFO channel with a serial service model: a
// message's transmission time delays the messages queued behind it, so a
// large payload stalls the link exactly the way the paper describes.
type link struct {
	f      *Fabric
	to     int
	maxBuf int64

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*item
	queued  int64 // bytes waiting
	busy    int   // messages in service (the current batch)
	rng     *rand.Rand
	batch   *obs.Hist // occupancy of each serviced batch (nil-safe)
	dropped int64
}

func (l *link) enqueue(it *item, abort <-chan struct{}, closed chan struct{}) error {
	l.mu.Lock()
	for l.queued+it.size > l.maxBuf && l.queued > 0 {
		// Buffer full: wait for drain, abort, or shutdown. Poll the
		// abort channel around cond waits; the delivery goroutine
		// broadcasts on every dequeue.
		select {
		case <-abort:
			l.mu.Unlock()
			return ErrAborted
		case <-closed:
			l.mu.Unlock()
			return ErrAborted
		default:
		}
		l.cond.Wait()
	}
	l.queue = append(l.queue, it)
	l.queued += it.size
	l.cond.Broadcast()
	l.mu.Unlock()
	return nil
}

// tryInline delivers env synchronously on an instant network, bypassing
// the link goroutine. It only fires while the link is idle (nothing
// queued or in service) and the destination is alive and unstalled, so
// per-link FIFO order and the park-while-dead semantics are untouched:
// any message that cannot go right now takes the queued path, and once
// one is queued every later send queues behind it until the link drains.
// l.mu is held across the inbox push so a racing send on the same link
// cannot overtake the delivery. The receiver gets a deep copy with the
// same ownership contract a decode would produce, never the sender's
// envelope; the queued path still wire-round-trips every message.
func (l *link) tryInline(env *wire.Envelope) bool {
	r := l.f.ranks[l.to]
	l.mu.Lock()
	if len(l.queue) > 0 || l.busy > 0 {
		l.mu.Unlock()
		return false
	}
	r.mu.Lock()
	if !r.alive || r.stalled {
		r.mu.Unlock()
		l.mu.Unlock()
		return false
	}
	box := r.box
	r.mu.Unlock()

	denv := wire.GetEnvelope()
	wire.CopyInto(denv, env)
	l.batch.Record(1)
	box.push(denv)
	l.mu.Unlock()
	return true
}

func (l *link) run() {
	for {
		l.mu.Lock()
		for len(l.queue) == 0 {
			select {
			case <-l.f.closed:
				l.mu.Unlock()
				return
			default:
			}
			l.cond.Wait()
		}
		// Serve the head, plus — when batching is on — as many queued
		// followers as fit under BatchBytes. The whole batch pays one
		// latency charge, like one coalesced write on a real link; FIFO
		// order within the batch is preserved at delivery.
		batch := []*item{l.queue[0]}
		total := l.queue[0].size
		l.queue = l.queue[1:]
		if max := l.f.cfg.BatchBytes; max > 0 {
			for len(l.queue) > 0 && total+l.queue[0].size <= max {
				batch = append(batch, l.queue[0])
				total += l.queue[0].size
				l.queue = l.queue[1:]
			}
		}
		l.queued -= total
		l.busy = len(batch)
		delay := l.delayFor(total)
		l.cond.Broadcast()
		l.mu.Unlock()

		l.batch.Record(int64(len(batch)))
		if delay > 0 {
			select {
			case <-l.f.clk.After(delay):
			case <-l.f.closed:
				return
			}
		}
		for _, it := range batch {
			if !l.deliver(it) {
				return
			}
		}
		l.mu.Lock()
		l.busy = 0
		l.mu.Unlock()
	}
}

// delayFor computes base + size/bandwidth + jitter. Callers hold l.mu (for
// the rng).
func (l *link) delayFor(size int64) time.Duration {
	d := l.f.cfg.BaseLatency
	if bps := l.f.cfg.BytesPerSecond; bps > 0 {
		d += time.Duration(size * int64(time.Second) / bps)
	}
	if jf := l.f.cfg.JitterFraction; jf > 0 && d > 0 {
		d += time.Duration(l.rng.Float64() * jf * float64(d))
	}
	return d
}

// deliver hands it to the destination, parking while the destination is
// dead or stalled. Returns false when the fabric shut down.
func (l *link) deliver(it *item) bool {
	r := l.f.ranks[l.to]
	r.mu.Lock()
	for !r.alive || r.stalled {
		select {
		case <-l.f.closed:
			r.mu.Unlock()
			return false
		default:
		}
		r.aliveCond.Wait()
	}
	box := r.box
	r.mu.Unlock()

	env := wire.GetEnvelope()
	if err := wire.DecodeInto(env, it.bytes); err != nil {
		// An encode/decode mismatch is a bug in this repository, not a
		// runtime condition: fail loudly.
		panic(fmt.Sprintf("fabric: corrupt envelope on link to %d: %v", l.to, err))
	}
	wire.PutBuf(it.buf)
	it.bytes, it.buf = nil, nil
	box.push(env)
	if it.done != nil {
		close(it.done)
	}
	return true
}

// rankState is the destination-side view of one rank.
type rankState struct {
	mu        sync.Mutex
	alive     bool
	stalled   bool // delivery suspended (Stall), independent of alive
	aliveCond *sync.Cond
	box       *inboxT
}

func newRankState() *rankState {
	r := &rankState{alive: true, box: newInbox()}
	r.aliveCond = sync.NewCond(&r.mu)
	return r
}

func (r *rankState) inbox() *inboxT {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.box
}

// inboxT is an unbounded closable FIFO of envelopes.
type inboxT struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*wire.Envelope
	closed bool
}

func newInbox() *inboxT {
	b := &inboxT{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inboxT) push(env *wire.Envelope) {
	b.mu.Lock()
	if b.closed {
		// The rank died between the alive check and the push; the
		// message is lost with the rank's volatile state. The recovery
		// protocol regenerates it from sender logs.
		b.mu.Unlock()
		return
	}
	b.queue = append(b.queue, env)
	b.cond.Signal()
	b.mu.Unlock()
}

func (b *inboxT) recv() (*wire.Envelope, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.queue) == 0 {
		return nil, false
	}
	env := b.queue[0]
	b.queue = b.queue[1:]
	return env, true
}

// recvBatch is recv draining up to cap(buf)-len(buf) queued envelopes in
// one critical section: one lock round and one receiver wakeup however
// many messages arrived while the receiver was busy.
func (b *inboxT) recvBatch(buf []*wire.Envelope) ([]*wire.Envelope, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.queue) == 0 {
		return buf, false
	}
	n := cap(buf) - len(buf)
	if n < 1 {
		n = 1
	}
	if n > len(b.queue) {
		n = len(b.queue)
	}
	buf = append(buf, b.queue[:n]...)
	rest := copy(b.queue, b.queue[n:])
	for i := rest; i < len(b.queue); i++ {
		b.queue[i] = nil // release delivered refs for the GC
	}
	b.queue = b.queue[:rest]
	return buf, true
}

// closeBox marks the box closed for fabric shutdown: receivers drain
// whatever is already queued, then see ok=false.
func (b *inboxT) closeBox() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// dropBox closes the box and discards everything queued. Kill uses this
// instead of closeBox: the dead incarnation's undelivered messages are
// part of its volatile state and must be lost with it — a receiver
// thread racing the kill would otherwise hand stale envelopes to the
// next incarnation's delivery path.
func (b *inboxT) dropBox() {
	b.mu.Lock()
	for i := range b.queue {
		b.queue[i] = nil
	}
	b.queue = nil
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
