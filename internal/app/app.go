// Package app defines the application model the rollback-recovery harness
// executes: deterministic, step-structured message-passing programs.
//
// An application runs as a sequence of steps. Within a step it exchanges
// messages through an Env; between steps the harness may take a
// checkpoint (the paper's protocols checkpoint "before delivering a
// message", which step boundaries satisfy). On recovery the harness
// re-creates the application, restores the checkpointed snapshot, and
// re-executes from the checkpointed step; the application must therefore
// be deterministic given its state and the messages delivered to it. If
// it uses AnySource receives, its computation must be insensitive to the
// arrival order of the matched messages — the exact property Section II.C
// of the paper observes in real MPI programs and that the TDI protocol
// exploits.
package app

// AnySource, passed as the source of Recv, matches a message from any
// rank — the MPI_ANY_SOURCE of the paper's discussion, introducing
// non-deterministic delivery.
const AnySource = -1

// AnyTag, passed as the tag of Recv, matches any tag on the candidate
// message.
const AnyTag = -1

// Env is the communication interface the harness hands an application.
// All methods are invoked from the application's own goroutine only.
//
// Delivery is strictly FIFO per sender channel (stronger than MPI, and
// what Algorithm 1 line 19 assumes): a Recv naming a specific source
// must request messages in the order that source sent them.
type Env interface {
	// Rank returns this process's id (0-based).
	Rank() int
	// N returns the number of processes.
	N() int
	// Send transmits data to dest with the given tag. In the harness's
	// non-blocking mode it returns immediately (Fig. 4(b)); in blocking
	// mode it returns when the destination has accepted the message
	// (Fig. 4(a)).
	Send(dest int, tag int32, data []byte)
	// Recv blocks until a message matching (source, tag) is deliverable
	// under the logging protocol's constraints, delivers it, and returns
	// its payload and actual source. source may be AnySource, tag may be
	// AnyTag.
	Recv(source int, tag int32) (data []byte, from int)
}

// App is a deterministic step-structured application. One instance exists
// per rank per incarnation; the harness never shares an instance across
// goroutines.
type App interface {
	// Steps returns the total number of steps the application executes.
	// It must be a constant for a given configuration.
	Steps() int
	// Step executes step s (0-based), exchanging messages via env.
	Step(env Env, s int)
	// Snapshot serializes the application state between steps.
	Snapshot() []byte
	// Restore replaces the application state with a prior Snapshot.
	Restore(data []byte) error
}

// Factory creates the rank-th application instance of an n-process run.
// It is called for the initial launch and again for every incarnation.
type Factory func(rank, n int) App
