package tel

import (
	"encoding/binary"
	"fmt"
	"sync"

	"windar/internal/clock"
	"windar/internal/determinant"
	"windar/internal/metrics"
	"windar/internal/proto"
	"windar/internal/vclock"
	"windar/internal/wire"
)

// TEL is one rank's protocol instance. It implements proto.Protocol.
//
// Locking: the harness serializes all proto.Protocol calls under the
// rank's mutex, which it also passes here as locker; the logger ack
// callback (which arrives on the logger's goroutine) takes locker before
// touching protocol state, so every mutation is serialized on the same
// lock.
type TEL struct {
	rank   int
	n      int
	logger *Logger
	locker sync.Locker

	// own holds this rank's determinants not yet acked as stable.
	own []determinant.D
	// received holds piggybacked determinants of other ranks not yet
	// known stable.
	received *determinant.Set
	// stableKnown is the latest logger stable vector this rank has seen.
	stableKnown vclock.Vec

	ownDelivered int64

	// Event-logger flush pipeline: at most one batch in flight.
	inFlight     bool
	pendingFlush []determinant.D

	// Recovery (PWD replay) state. respSeen records which peers have
	// already been accounted against pendingResponses — by RESPONSE
	// arrival or by death — so a peer is counted exactly once.
	pendingResponses int
	recorded         map[int64]determinant.D
	recoveryBase     int64
	respSeen         map[int]bool

	// Piggyback pre-validation memo: Deliverable runs on every probe of
	// a held FIFO head, so the bytes are checked once per (source, send
	// index). valSeen guards against envelopes whose forged SendIndex
	// collides with the zero value.
	valIdx  []int64
	valErr  []error
	valSeen []bool

	m   *metrics.Rank
	clk clock.Clock
}

var _ proto.Protocol = (*TEL)(nil)

// New returns a TEL instance for rank in an n-process system. locker must
// be the same lock under which the harness invokes the protocol; logger
// acks are applied under it. The metrics rank may be nil; clk times the
// tracking overhead charged to it and defaults to the wall clock.
func New(rank, n int, logger *Logger, locker sync.Locker, m *metrics.Rank, clk clock.Clock) *TEL {
	if m == nil {
		m = &metrics.Rank{}
	}
	if locker == nil {
		locker = &sync.Mutex{}
	}
	if clk == nil {
		clk = clock.Real{}
	}
	return &TEL{
		rank:        rank,
		n:           n,
		logger:      logger,
		locker:      locker,
		received:    determinant.NewSet(),
		stableKnown: vclock.New(n),
		valIdx:      make([]int64, n),
		valErr:      make([]error, n),
		valSeen:     make([]bool, n),
		m:           m,
		clk:         clk,
	}
}

// Name implements proto.Protocol.
func (t *TEL) Name() string { return "tel" }

// UnstableCount reports how many determinants are currently piggybacked
// (tests, diagnostics).
func (t *TEL) UnstableCount() int { return len(t.own) + t.received.Len() }

// unstable collects the determinants that must ride on the next send.
func (t *TEL) unstable() []determinant.D {
	out := make([]determinant.D, 0, len(t.own)+t.received.Len())
	for _, d := range t.own {
		if d.DeliverIndex > t.stableKnown[t.rank] {
			out = append(out, d)
		}
	}
	for _, d := range t.received.All() {
		if d.Receiver < 0 || d.Receiver >= t.n || d.DeliverIndex > t.stableKnown[d.Receiver] {
			out = append(out, d)
		}
	}
	return out
}

// PiggybackForSend implements proto.Protocol: every determinant not yet
// known stable rides along, 4 identifiers each.
func (t *TEL) PiggybackForSend(dest int, sendIndex int64) ([]byte, int) {
	start := t.clk.Now()
	ds := t.unstable()
	pig := determinant.AppendSlice(make([]byte, 0, 8+16*len(ds)), ds)
	t.m.SendTracking(t.clk.Now().Sub(start))
	return pig, determinant.IdentifierCount * len(ds)
}

// validatePig checks that env's piggyback parses as a determinant slice
// without absorbing it, memoized per (source, send index). OnDeliver
// still owns the merge; this gate keeps hostile bytes from reaching it.
func (t *TEL) validatePig(env *wire.Envelope) error {
	src := env.From
	if src < 0 || src >= t.n {
		return fmt.Errorf("tel: rank %d: piggyback from out-of-range rank %d", t.rank, src)
	}
	if t.valSeen[src] && t.valIdx[src] == env.SendIndex {
		return t.valErr[src]
	}
	var err error
	if _, _, e := determinant.ReadSlice(env.Piggyback); e != nil {
		err = fmt.Errorf("tel: rank %d: bad piggyback from %d: %w", t.rank, src, e)
	}
	t.valSeen[src] = true
	t.valIdx[src] = env.SendIndex
	t.valErr[src] = err
	return err
}

// Deliverable implements proto.Protocol. Normal operation: no constraint
// beyond the harness's FIFO/duplicate control. Rolling forward: hold
// until all responses arrive, then pin each slot to the recorded message
// (PWD replay), falling back to free choice beyond recorded history. A
// piggyback that does not parse is reported as an error (held by the
// harness), never delivered or panicked on.
func (t *TEL) Deliverable(env *wire.Envelope, deliveredCount int64) (proto.Verdict, error) {
	if err := t.validatePig(env); err != nil {
		return proto.Hold, err
	}
	if t.pendingResponses > 0 {
		return proto.Hold, nil
	}
	if det, ok := t.recorded[deliveredCount+1]; ok {
		if env.From == det.Sender && env.SendIndex == det.SendIndex {
			return proto.Deliver, nil
		}
		return proto.Hold, nil
	}
	return proto.Deliver, nil
}

// OnDeliver implements proto.Protocol: absorb the piggybacked
// determinants, create this delivery's determinant, and ship it to the
// event logger asynchronously.
func (t *TEL) OnDeliver(env *wire.Envelope, deliverIndex int64) error {
	start := t.clk.Now()
	ds, _, err := determinant.ReadSlice(env.Piggyback)
	if err != nil {
		return fmt.Errorf("tel: rank %d: bad piggyback from %d: %w", t.rank, env.From, err)
	}
	for _, d := range ds {
		if d.Receiver == t.rank {
			continue // our own events are tracked in t.own / the logger
		}
		if d.Receiver >= 0 && d.Receiver < t.n && d.DeliverIndex <= t.stableKnown[d.Receiver] {
			continue // already stable
		}
		t.received.Add(d)
	}
	own := determinant.D{
		Sender: env.From, SendIndex: env.SendIndex,
		Receiver: t.rank, DeliverIndex: deliverIndex,
	}
	t.own = append(t.own, own)
	t.ownDelivered = deliverIndex
	delete(t.recorded, deliverIndex)
	t.flushLocked([]determinant.D{own})
	t.m.DeliverTracking(t.clk.Now().Sub(start))
	return nil
}

// flushLocked ships determinants to the logger, keeping at most one batch
// in flight. Callers hold the rank lock.
func (t *TEL) flushLocked(ds []determinant.D) {
	if t.logger == nil {
		return
	}
	if t.inFlight {
		t.pendingFlush = append(t.pendingFlush, ds...)
		return
	}
	t.inFlight = true
	t.m.ControlMsg()
	t.logger.LogAsync(ds, t.onAck)
}

// onAck runs on the logger goroutine; it applies the stable vector under
// the rank lock and releases the next pending batch.
func (t *TEL) onAck(stable vclock.Vec) {
	t.locker.Lock()
	defer t.locker.Unlock()
	t.stableKnown.Merge(stable)
	// Drop stable determinants.
	kept := t.own[:0]
	for _, d := range t.own {
		if d.DeliverIndex > t.stableKnown[t.rank] {
			kept = append(kept, d)
		}
	}
	t.own = kept
	for _, d := range t.received.All() {
		if d.Receiver >= 0 && d.Receiver < t.n && d.DeliverIndex <= t.stableKnown[d.Receiver] {
			t.received.Remove(d.Key())
		}
	}
	t.inFlight = false
	if len(t.pendingFlush) > 0 {
		next := t.pendingFlush
		t.pendingFlush = nil
		t.flushLocked(next)
	}
}

// Snapshot implements proto.Protocol.
func (t *TEL) Snapshot() []byte {
	buf := binary.AppendVarint(nil, t.ownDelivered)
	buf = wire.AppendVec(buf, t.stableKnown)
	buf = determinant.AppendSlice(buf, t.own)
	buf = determinant.AppendSlice(buf, t.received.All())
	return buf
}

// Restore implements proto.Protocol.
func (t *TEL) Restore(data []byte) error {
	own, off := binary.Varint(data)
	if off <= 0 {
		return fmt.Errorf("tel: restore: bad header")
	}
	i := off
	stable, n, err := wire.ReadVec(data[i:])
	if err != nil {
		return fmt.Errorf("tel: restore: %w", err)
	}
	i += n
	ownDs, n, err := determinant.ReadSlice(data[i:])
	if err != nil {
		return fmt.Errorf("tel: restore: %w", err)
	}
	i += n
	recvDs, _, err := determinant.ReadSlice(data[i:])
	if err != nil {
		return fmt.Errorf("tel: restore: %w", err)
	}
	if len(stable) != t.n {
		return fmt.Errorf("tel: restore: stable vector length %d, want %d", len(stable), t.n)
	}
	t.ownDelivered = own
	t.stableKnown = stable
	t.own = ownDs
	t.received = determinant.NewSet()
	for _, d := range recvDs {
		t.received.Add(d)
	}
	t.inFlight = false
	t.pendingFlush = nil
	return nil
}

// RecoveryData implements proto.Protocol: the determinants this survivor
// still holds for the failed rank's post-checkpoint deliveries. (Stable
// determinants were pruned locally; the incarnation reads those straight
// from the event logger.)
func (t *TEL) RecoveryData(failed int, ckptDeliveredCount int64) []byte {
	var out []determinant.D
	for _, d := range t.received.All() {
		if d.Receiver == failed && d.DeliverIndex > ckptDeliveredCount {
			out = append(out, d)
		}
	}
	return determinant.AppendSlice(nil, out)
}

// BeginRecovery implements proto.Protocol: fetch own stable determinants
// from the event logger (a synchronous stable-storage read), then wait
// for the survivors' unstable contributions.
func (t *TEL) BeginRecovery(expectResponses int) {
	t.pendingResponses = expectResponses
	t.recorded = make(map[int64]determinant.D)
	t.recoveryBase = t.ownDelivered
	t.respSeen = make(map[int]bool)
	if t.logger != nil {
		for _, d := range t.logger.FetchFor(t.rank, t.recoveryBase) {
			t.recorded[d.DeliverIndex] = d
		}
	}
}

// OnRecoveryData implements proto.Protocol.
func (t *TEL) OnRecoveryData(from int, data []byte) error {
	ds, _, err := determinant.ReadSlice(data)
	if err != nil {
		return fmt.Errorf("tel: recovery data from %d: %w", from, err)
	}
	if t.recorded == nil {
		return nil // stale RESPONSE outside any rolling forward
	}
	for _, d := range ds {
		if d.Receiver == t.rank && d.DeliverIndex > t.recoveryBase {
			t.recorded[d.DeliverIndex] = d
		}
	}
	// A duplicate or late RESPONSE still merges above but must not
	// decrement the count twice.
	if !t.respSeen[from] {
		t.respSeen[from] = true
		if t.pendingResponses > 0 {
			t.pendingResponses--
		}
	}
	return nil
}

// OnResponderLost implements proto.Protocol: a peer counted in
// BeginRecovery died before responding; stop holding delivery for it.
// Whatever unstable determinants it held for us are lost with it — the
// same loss a PWD protocol already accepts for simultaneous failures —
// and anything it had flushed is in the event logger we already read.
func (t *TEL) OnResponderLost(peer int) {
	if t.recorded == nil || t.respSeen[peer] {
		return
	}
	t.respSeen[peer] = true
	if t.pendingResponses > 0 {
		t.pendingResponses--
	}
}

// OnPeerRollback implements proto.Protocol. TEL keeps no per-peer
// send-side estimate (every unstable determinant rides on every send), so
// nothing needs resetting when a peer rolls back.
func (t *TEL) OnPeerRollback(peer int, ckptDelivered int64) {}

// OnPeerCheckpoint implements proto.Protocol: determinants covered by the
// peer's checkpoint can never be replayed; drop them locally and at the
// logger.
func (t *TEL) OnPeerCheckpoint(peer int, deliveredCount int64) {
	for _, d := range t.received.All() {
		if d.Receiver == peer && d.DeliverIndex <= deliveredCount {
			t.received.Remove(d.Key())
		}
	}
	if peer == t.rank {
		kept := t.own[:0]
		for _, d := range t.own {
			if d.DeliverIndex > deliveredCount {
				kept = append(kept, d)
			}
		}
		t.own = kept
	}
	if t.logger != nil {
		t.logger.Prune(peer, deliveredCount)
	}
}
