package tel

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"windar/internal/determinant"
	"windar/internal/vclock"
	"windar/internal/wire"
)

// benchTEL builds a TEL instance carrying a given number of unstable
// determinants (a never-acking logger keeps everything unstable).
func benchTEL(b *testing.B, unstable int) (*TEL, *sync.Mutex) {
	b.Helper()
	lg := NewLogger(8, nil, time.Hour)
	b.Cleanup(lg.Close)
	var mu sync.Mutex
	p := New(1, 8, lg, &mu, nil, nil)
	feeder := New(0, 8, nil, nil, nil, nil)
	mu.Lock()
	for i := 1; i <= unstable; i++ {
		pig, _ := feeder.PiggybackForSend(1, int64(i))
		env := &wire.Envelope{Kind: wire.KindApp, From: 0, To: 1, SendIndex: int64(i), Piggyback: pig}
		if err := p.OnDeliver(env, int64(i)); err != nil {
			mu.Unlock()
			b.Fatal(err)
		}
	}
	mu.Unlock()
	return p, &mu
}

// BenchmarkPiggybackForSend measures TEL's send cost as a function of
// the unstable-determinant window — bounded by the event-logger round
// trip in steady state, unbounded when the logger lags.
func BenchmarkPiggybackForSend(b *testing.B) {
	for _, unstable := range []int{0, 16, 256} {
		b.Run(fmt.Sprintf("unstable%d", unstable), func(b *testing.B) {
			p, mu := benchTEL(b, unstable)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mu.Lock()
				_, _ = p.PiggybackForSend(2, int64(i+1))
				mu.Unlock()
			}
		})
	}
}

// BenchmarkLoggerCommit measures the stable event logger's ingest rate
// with zero service latency: pure commit + stable-prefix bookkeeping.
func BenchmarkLoggerCommit(b *testing.B) {
	lg := NewLogger(8, nil, 0)
	defer lg.Close()
	b.ReportAllocs()
	var wg sync.WaitGroup
	wg.Add(b.N)
	for i := 0; i < b.N; i++ {
		lg.LogAsync([]determinant.D{{
			Sender: 0, SendIndex: int64(i + 1),
			Receiver: 1, DeliverIndex: int64(i + 1),
		}}, func(vclock.Vec) { wg.Done() })
	}
	wg.Wait()
	if lg.Logged() != int64(b.N) {
		b.Fatalf("logged %d of %d", lg.Logged(), b.N)
	}
}
