package tel

import (
	"sync"
	"testing"
	"time"

	"windar/internal/clock"
	"windar/internal/determinant"
	"windar/internal/proto"
	"windar/internal/vclock"
	"windar/internal/wire"
)

func newLoggerT(t *testing.T, n int, latency time.Duration) *Logger {
	t.Helper()
	lg := NewLogger(n, clock.Real{}, latency)
	t.Cleanup(lg.Close)
	return lg
}

func envFrom(p *TEL, from, to int, sendIndex int64) *wire.Envelope {
	pig, _ := p.PiggybackForSend(to, sendIndex)
	return &wire.Envelope{Kind: wire.KindApp, From: from, To: to, SendIndex: sendIndex, Piggyback: pig}
}

func deliverT(t *testing.T, p *TEL, env *wire.Envelope, idx int64) {
	t.Helper()
	if v, err := p.Deliverable(env, idx-1); err != nil || v != proto.Deliver {
		t.Fatalf("Deliverable = %v for delivery %d", v, idx)
	}
	if err := p.OnDeliver(env, idx); err != nil {
		t.Fatalf("OnDeliver: %v", err)
	}
}

// waitUnstable polls until p's unstable count drops to want (acks are
// asynchronous).
func waitUnstable(t *testing.T, mu sync.Locker, p *TEL, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := p.UnstableCount()
		mu.Unlock()
		if n == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("UnstableCount stuck at %d, want %d", n, want)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestLoggerCommitAndStableVec(t *testing.T) {
	lg := newLoggerT(t, 3, 0)
	done := make(chan vclock.Vec, 1)
	lg.LogAsync([]determinant.D{
		{Sender: 0, SendIndex: 1, Receiver: 1, DeliverIndex: 1},
		{Sender: 2, SendIndex: 1, Receiver: 1, DeliverIndex: 2},
	}, func(stable vclock.Vec) { done <- stable })
	select {
	case stable := <-done:
		if !stable.Equal(vclock.Vec{0, 2, 0}) {
			t.Fatalf("stable vec = %v, want (0, 2, 0)", stable)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ack never fired")
	}
	if lg.Logged() != 2 {
		t.Fatalf("Logged = %d", lg.Logged())
	}
	// A gap keeps the contiguous prefix from advancing.
	done2 := make(chan vclock.Vec, 1)
	lg.LogAsync([]determinant.D{
		{Sender: 0, SendIndex: 9, Receiver: 1, DeliverIndex: 4},
	}, func(stable vclock.Vec) { done2 <- stable })
	select {
	case stable := <-done2:
		if stable[1] != 2 {
			t.Fatalf("gap ignored: stable[1] = %d, want 2", stable[1])
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second ack never fired")
	}
	// Filling the gap advances past both.
	done3 := make(chan vclock.Vec, 1)
	lg.LogAsync([]determinant.D{
		{Sender: 0, SendIndex: 8, Receiver: 1, DeliverIndex: 3},
	}, func(stable vclock.Vec) { done3 <- stable })
	select {
	case stable := <-done3:
		if stable[1] != 4 {
			t.Fatalf("stable[1] = %d after gap fill, want 4", stable[1])
		}
	case <-time.After(10 * time.Second):
		t.Fatal("third ack never fired")
	}
}

func TestName(t *testing.T) {
	if New(0, 1, nil, nil, nil, nil).Name() != "tel" {
		t.Fatal("name")
	}
}

func TestPiggybackEmptyInitially(t *testing.T) {
	p := New(0, 4, nil, nil, nil, nil)
	pig, ids := p.PiggybackForSend(1, 1)
	if ids != 0 {
		t.Fatalf("ids = %d, want 0", ids)
	}
	ds, _, err := determinant.ReadSlice(pig)
	if err != nil || len(ds) != 0 {
		t.Fatalf("ds = %v, err %v", ds, err)
	}
}

func TestUnstableDeterminantsPiggybacked(t *testing.T) {
	// High logger latency: nothing becomes stable during the test, so
	// every delivery adds 4 identifiers to subsequent sends.
	lg := newLoggerT(t, 4, time.Hour)
	var mu sync.Mutex
	p := New(1, 4, lg, &mu, nil, nil)
	feeder := New(0, 4, nil, nil, nil, nil)
	mu.Lock()
	deliverT(t, p, envFrom(feeder, 0, 1, 1), 1)
	deliverT(t, p, envFrom(feeder, 0, 1, 2), 2)
	_, ids := p.PiggybackForSend(2, 1)
	mu.Unlock()
	if ids != 8 {
		t.Fatalf("ids = %d, want 8 (2 unstable determinants)", ids)
	}
}

func TestAckPrunesPiggyback(t *testing.T) {
	// Low latency: after acks arrive the unstable set drains and the
	// piggyback shrinks back to zero — TEL's advantage over TAG.
	lg := newLoggerT(t, 4, time.Millisecond)
	var mu sync.Mutex
	p := New(1, 4, lg, &mu, nil, nil)
	feeder := New(0, 4, nil, nil, nil, nil)
	mu.Lock()
	deliverT(t, p, envFrom(feeder, 0, 1, 1), 1)
	deliverT(t, p, envFrom(feeder, 0, 1, 2), 2)
	mu.Unlock()
	waitUnstable(t, &mu, p, 0)
	mu.Lock()
	_, ids := p.PiggybackForSend(2, 3)
	mu.Unlock()
	if ids != 0 {
		t.Fatalf("ids = %d after acks, want 0", ids)
	}
}

func TestReceivedDeterminantsPropagate(t *testing.T) {
	// P1 delivers with a slow logger, sends to P2: P2 must carry P1's
	// unstable determinant onward (causal piggybacking).
	lg := newLoggerT(t, 4, time.Hour)
	var mu1, mu2 sync.Mutex
	p1 := New(1, 4, lg, &mu1, nil, nil)
	p2 := New(2, 4, lg, &mu2, nil, nil)
	feeder := New(0, 4, nil, nil, nil, nil)

	mu1.Lock()
	deliverT(t, p1, envFrom(feeder, 0, 1, 1), 1)
	m := envFrom(p1, 1, 2, 1)
	mu1.Unlock()

	mu2.Lock()
	deliverT(t, p2, m, 1)
	_, ids := p2.PiggybackForSend(3, 1)
	mu2.Unlock()
	// P2 carries P1's determinant plus its own delivery's: 2 × 4.
	if ids != 8 {
		t.Fatalf("ids = %d, want 8", ids)
	}
}

func TestRecoveryUsesLoggerAndResponses(t *testing.T) {
	lg := newLoggerT(t, 3, 0)
	var mu sync.Mutex
	p := New(1, 3, lg, &mu, nil, nil)
	feeder0 := New(0, 3, nil, nil, nil, nil)
	feeder2 := New(2, 3, nil, nil, nil, nil)

	mu.Lock()
	deliverT(t, p, envFrom(feeder0, 0, 1, 1), 1)
	deliverT(t, p, envFrom(feeder2, 2, 1, 1), 2)
	mu.Unlock()
	// Wait for the determinants to reach the logger.
	deadline := time.Now().Add(10 * time.Second)
	for lg.Logged() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("logger only has %d determinants", lg.Logged())
		}
		time.Sleep(200 * time.Microsecond)
	}

	// Fresh incarnation from an empty checkpoint.
	inc := New(1, 3, lg, &sync.Mutex{}, nil, nil)
	inc.BeginRecovery(2)

	m0 := envFrom(New(0, 3, nil, nil, nil, nil), 0, 1, 1)
	m2 := envFrom(New(2, 3, nil, nil, nil, nil), 2, 1, 1)

	// Responses outstanding: hold.
	if v, err := inc.Deliverable(m0, 0); err != nil || v != proto.Hold {
		t.Fatalf("admitted before responses: %v", v)
	}
	if err := inc.OnRecoveryData(0, determinant.AppendSlice(nil, nil)); err != nil {
		t.Fatal(err)
	}
	if err := inc.OnRecoveryData(2, determinant.AppendSlice(nil, nil)); err != nil {
		t.Fatal(err)
	}

	// The logger pinned slot 1 to (P0,#1): m2 must hold, m0 delivers.
	if v, err := inc.Deliverable(m2, 0); err != nil || v != proto.Hold {
		t.Fatalf("out-of-order replay admitted: %v", v)
	}
	if v, err := inc.Deliverable(m0, 0); err != nil || v != proto.Deliver {
		t.Fatalf("recorded message held: %v", v)
	}
	if err := inc.OnDeliver(m0, 1); err != nil {
		t.Fatal(err)
	}
	if v, err := inc.Deliverable(m2, 1); err != nil || v != proto.Deliver {
		t.Fatalf("slot 2 held: %v", v)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	lg := newLoggerT(t, 3, time.Hour)
	var mu sync.Mutex
	p := New(1, 3, lg, &mu, nil, nil)
	feeder := New(0, 3, nil, nil, nil, nil)
	mu.Lock()
	deliverT(t, p, envFrom(feeder, 0, 1, 1), 1)
	snap := p.Snapshot()
	unstable := p.UnstableCount()
	mu.Unlock()

	restored := New(1, 3, lg, &sync.Mutex{}, nil, nil)
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.ownDelivered != 1 || restored.UnstableCount() != unstable {
		t.Fatalf("restored state: delivered=%d unstable=%d", restored.ownDelivered, restored.UnstableCount())
	}
	if err := restored.Restore([]byte{0xFF}); err == nil {
		t.Fatal("Restore accepted garbage")
	}
}

func TestOnPeerCheckpointPrunes(t *testing.T) {
	lg := newLoggerT(t, 4, time.Hour)
	var mu sync.Mutex
	p2 := New(2, 4, lg, &mu, nil, nil)
	p1 := New(1, 4, lg, &sync.Mutex{}, nil, nil)
	feeder := New(0, 4, nil, nil, nil, nil)

	// P1 accumulates two unstable determinants and sends to P2.
	deliverT(t, p1, envFrom(feeder, 0, 1, 1), 1)
	deliverT(t, p1, envFrom(feeder, 0, 1, 2), 2)
	m := envFrom(p1, 1, 2, 1)
	mu.Lock()
	deliverT(t, p2, m, 1)
	before := p2.UnstableCount()
	p2.OnPeerCheckpoint(1, 2)
	after := p2.UnstableCount()
	mu.Unlock()
	if before != 3 { // two of P1's + own delivery
		t.Fatalf("before = %d, want 3", before)
	}
	if after != 1 { // only own delivery survives
		t.Fatalf("after = %d, want 1", after)
	}
}

func TestLoggerFetchForOrdering(t *testing.T) {
	lg := newLoggerT(t, 2, 0)
	done := make(chan struct{})
	lg.LogAsync([]determinant.D{
		{Sender: 0, SendIndex: 2, Receiver: 1, DeliverIndex: 3},
		{Sender: 0, SendIndex: 1, Receiver: 1, DeliverIndex: 1},
		{Sender: 0, SendIndex: 3, Receiver: 1, DeliverIndex: 2},
	}, func(vclock.Vec) { close(done) })
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ack never fired")
	}
	got := lg.FetchFor(1, 1)
	if len(got) != 2 {
		t.Fatalf("FetchFor = %v", got)
	}
	if got[0].DeliverIndex != 2 || got[1].DeliverIndex != 3 {
		t.Fatalf("FetchFor out of order: %v", got)
	}
	if extra := lg.FetchFor(0, 0); len(extra) != 0 {
		t.Fatalf("FetchFor(0) = %v, want empty", extra)
	}
	// Prune drops records and advances the stable floor.
	lg.Prune(1, 2)
	if got := lg.FetchFor(1, 0); len(got) != 1 || got[0].DeliverIndex != 3 {
		t.Fatalf("after prune: %v", got)
	}
	if v := lg.StableVec(); v[1] < 2 {
		t.Fatalf("stable floor not advanced by prune: %v", v)
	}
}

func TestOnDeliverRejectsGarbage(t *testing.T) {
	p := New(0, 2, nil, nil, nil, nil)
	bad := &wire.Envelope{Kind: wire.KindApp, From: 1, To: 0, SendIndex: 1, Piggyback: []byte{0xFF}}
	if err := p.OnDeliver(bad, 1); err == nil {
		t.Fatal("garbage piggyback accepted")
	}
}
