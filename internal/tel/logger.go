// Package tel implements the TEL baseline: causal message logging with a
// stable event logger, in the style of Bouteiller et al. [IPDPS'05] — the
// second comparator of the paper's Fig. 6 and Fig. 7.
//
// Each delivery's determinant is sent asynchronously to a stable event
// logger. Until the logger acknowledges it, the determinant must be
// piggybacked causally, exactly like classic causal logging; once stable,
// piggybacking stops. Piggyback volume is therefore bounded by the
// message rate times the logger round-trip — smaller than TAG's
// ever-growing graph but still a multiple of TDI's flat vector, and the
// scheme adds determinant traffic and a stable-storage service that TDI
// does not need.
package tel

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"windar/internal/clock"
	"windar/internal/determinant"
	"windar/internal/stable"
	"windar/internal/vclock"
)

// Logger is the shared stable event-logger service. One instance serves
// the whole cluster; it survives every rank failure (it models a
// dedicated stable node). Safe for concurrent use.
//
// The logger is a single-server queue: requests from all ranks are
// serviced one at a time, each paying the stable-storage latency. Under
// load the queue backs up and acknowledgements lag — the centralized
// event-logger scalability limit the literature attacks with distributed
// event logging (Ropars & Morin [9]), and the reason TEL's piggyback
// window grows with system scale in Fig. 6.
type Logger struct {
	clk     clock.Clock
	latency time.Duration

	mu         sync.Mutex
	byReceiver map[int]map[int64]determinant.D // receiver -> deliverIndex -> det
	stableUpTo vclock.Vec                      // contiguous stable prefix per receiver
	logged     int64
	store      stable.Backend // optional durable mirror, see AttachStore

	reqMu   sync.Mutex
	reqCond *sync.Cond
	queue   []logReq

	closeOnce sync.Once
	closed    chan struct{}
}

type logReq struct {
	batch []determinant.D
	ack   func(vclock.Vec)
}

// NewLogger returns a logger for an n-process system whose log operations
// each occupy the single logger server for latency (the stable-storage
// round trip).
func NewLogger(n int, clk clock.Clock, latency time.Duration) *Logger {
	if clk == nil {
		clk = clock.Real{}
	}
	lg := &Logger{
		clk:        clk,
		latency:    latency,
		byReceiver: make(map[int]map[int64]determinant.D),
		stableUpTo: vclock.New(n),
		closed:     make(chan struct{}),
	}
	lg.reqCond = sync.NewCond(&lg.reqMu)
	go lg.serve()
	return lg
}

// Close aborts in-flight log requests (their acks never fire).
func (lg *Logger) Close() {
	lg.closeOnce.Do(func() {
		close(lg.closed)
		lg.reqMu.Lock()
		lg.reqCond.Broadcast()
		lg.reqMu.Unlock()
	})
}

// AttachStore mirrors every determinant the logger records into store
// under tel/<receiver>/<deliverIndex>, deleting mirrored keys as Prune
// releases them — so a durable backend's footprint for the event log
// stays bounded by the live (unpruned) determinant set. The mirror rides
// the backend's lazy append path: the logger already models its own
// stable-storage service latency, so the mirror charges none. Mirrored
// determinants are not reloaded on process restart (TEL recovery across
// a full restart is out of scope); the mirror exists to bound and
// account the durable footprint. Call before the cluster starts.
func (lg *Logger) AttachStore(store stable.Backend) {
	lg.mu.Lock()
	lg.store = store
	lg.mu.Unlock()
}

// telKey is the mirror key for one determinant. The fixed-width hex
// index keeps lexicographic key order equal to delivery order.
func telKey(receiver int, deliverIndex int64) string {
	return fmt.Sprintf("tel/%03d/%016x", receiver, uint64(deliverIndex))
}

// LogAsync enqueues ds for durable recording; once the single logger
// server has processed the request (after queueing plus the service
// latency) it invokes ack with the logger's stable vector (per-receiver
// contiguous stable delivery prefix). The ack runs on the logger's
// goroutine with no logger lock held; callers synchronize their own
// state inside ack.
func (lg *Logger) LogAsync(ds []determinant.D, ack func(stable vclock.Vec)) {
	batch := make([]determinant.D, len(ds))
	copy(batch, ds)
	lg.reqMu.Lock()
	lg.queue = append(lg.queue, logReq{batch: batch, ack: ack})
	lg.reqCond.Signal()
	lg.reqMu.Unlock()
}

// serve is the single-server loop.
func (lg *Logger) serve() {
	for {
		lg.reqMu.Lock()
		for len(lg.queue) == 0 {
			select {
			case <-lg.closed:
				lg.reqMu.Unlock()
				return
			default:
			}
			lg.reqCond.Wait()
		}
		req := lg.queue[0]
		lg.queue = lg.queue[1:]
		lg.reqMu.Unlock()

		if lg.latency > 0 {
			select {
			case <-lg.clk.After(lg.latency):
			case <-lg.closed:
				return
			}
		}
		select {
		case <-lg.closed:
			return
		default:
		}
		stable := lg.commit(req.batch)
		if req.ack != nil {
			req.ack(stable)
		}
	}
}

// QueueLen reports the number of pending log requests (diagnostics).
func (lg *Logger) QueueLen() int {
	lg.reqMu.Lock()
	defer lg.reqMu.Unlock()
	return len(lg.queue)
}

func (lg *Logger) commit(ds []determinant.D) vclock.Vec {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	for _, d := range ds {
		m := lg.byReceiver[d.Receiver]
		if m == nil {
			m = make(map[int64]determinant.D)
			lg.byReceiver[d.Receiver] = m
		}
		if _, ok := m[d.DeliverIndex]; !ok {
			m[d.DeliverIndex] = d
			lg.logged++
			if lg.store != nil {
				if err := lg.store.PutLazy(telKey(d.Receiver, d.DeliverIndex), d.Append(nil)); err != nil {
					panic(fmt.Sprintf("tel: mirror determinant: %v", err))
				}
			}
		}
	}
	// Advance each touched receiver's contiguous prefix.
	for _, d := range ds {
		r := d.Receiver
		if r < 0 || r >= len(lg.stableUpTo) {
			continue
		}
		m := lg.byReceiver[r]
		for {
			if _, ok := m[lg.stableUpTo[r]+1]; !ok {
				break
			}
			lg.stableUpTo[r]++
		}
	}
	return lg.stableUpTo.Clone()
}

// StableVec returns the current per-receiver contiguous stable prefix.
func (lg *Logger) StableVec() vclock.Vec {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.stableUpTo.Clone()
}

// FetchFor returns receiver's stable determinants with DeliverIndex >
// after, in delivery order — the recovery read an incarnation performs
// before rolling forward.
func (lg *Logger) FetchFor(receiver int, after int64) []determinant.D {
	if lg.latency > 0 {
		select {
		case <-lg.clk.After(lg.latency):
		case <-lg.closed:
			return nil
		}
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	var out []determinant.D
	for idx, d := range lg.byReceiver[receiver] {
		if idx > after {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DeliverIndex < out[j].DeliverIndex })
	return out
}

// Logged reports the number of distinct determinants recorded.
func (lg *Logger) Logged() int64 {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	return lg.logged
}

// Prune discards receiver's determinants at or below upto (its checkpoint
// made them unreplayable).
func (lg *Logger) Prune(receiver int, upto int64) {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	m := lg.byReceiver[receiver]
	for idx := range m {
		if idx <= upto {
			delete(m, idx)
			if lg.store != nil {
				if err := lg.store.Delete(telKey(receiver, idx)); err != nil {
					panic(fmt.Sprintf("tel: release determinant: %v", err))
				}
			}
		}
	}
	if receiver >= 0 && receiver < len(lg.stableUpTo) && lg.stableUpTo[receiver] < upto {
		lg.stableUpTo[receiver] = upto
	}
}
