// Package mem adapts the in-process simulated fabric
// (internal/fabric) to the transport.Transport interface. The fabric
// keeps its latency/bandwidth/jitter model and crash semantics; this
// package only translates types, so the mem transport is byte-for-byte
// the substrate the paper-figure experiments always ran on.
package mem

import (
	"errors"

	"windar/internal/fabric"
	"windar/internal/transport"
	"windar/internal/wire"
)

// Transport is the fabric-backed transport.
type Transport struct {
	fab *fabric.Fabric
}

var (
	_ transport.Transport = (*Transport)(nil)
	_ transport.Staller   = (*Transport)(nil)
)

// New builds a mem transport over a fresh fabric configured by cfg.
func New(cfg fabric.Config) *Transport {
	return &Transport{fab: fabric.New(cfg)}
}

// N implements transport.Transport.
func (t *Transport) N() int { return t.fab.N() }

// Kind implements transport.Transport.
func (t *Transport) Kind() transport.Kind { return transport.Mem }

// Send implements transport.Transport.
func (t *Transport) Send(env *wire.Envelope, opts transport.SendOpts) error {
	err := t.fab.Send(env, fabric.SendOpts{Rendezvous: opts.Rendezvous, Abort: opts.Abort})
	if errors.Is(err, fabric.ErrAborted) {
		return transport.ErrAborted
	}
	return err
}

// TrySend implements transport.InlineSender: on an instant fabric the
// envelope is decoded straight into the destination inbox.
func (t *Transport) TrySend(env *wire.Envelope) bool { return t.fab.TrySend(env) }

// Inbox implements transport.Transport; fabric.Inbox already satisfies
// the transport.Inbox shape.
func (t *Transport) Inbox(rank int) transport.Inbox { return t.fab.Inbox(rank) }

// Kill implements transport.Transport.
func (t *Transport) Kill(rank int) { t.fab.Kill(rank) }

// Revive implements transport.Transport.
func (t *Transport) Revive(rank int) { t.fab.Revive(rank) }

// Stall implements transport.Staller.
func (t *Transport) Stall(rank int) { t.fab.Stall(rank) }

// Unstall implements transport.Staller.
func (t *Transport) Unstall(rank int) { t.fab.Unstall(rank) }

// Alive implements transport.Transport.
func (t *Transport) Alive(rank int) bool { return t.fab.Alive(rank) }

// InFlight implements transport.Transport.
func (t *Transport) InFlight() int { return t.fab.InFlight() }

// Close implements transport.Transport.
func (t *Transport) Close() { t.fab.Close() }
