// Conformance suite: every test runs against both Transport
// implementations, pinning the shared failure contract documented on
// the package — per-pair FIFO, inbox-drop on Kill, parked delivery
// across a dead window, rendezvous and abort semantics.
package transport_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"windar/internal/fabric"
	"windar/internal/transport"
	"windar/internal/transport/mem"
	"windar/internal/transport/tcp"
	"windar/internal/wire"
)

// each runs fn once per implementation on a fresh n-rank transport with
// default batching (on for tcp, off for mem).
func each(t *testing.T, n int, fn func(t *testing.T, tr transport.Transport)) {
	eachWith(t, n, 0, fn)
}

// eachWith is each with an explicit send-batching budget: positive
// enables frame batching on both implementations, negative disables it.
func eachWith(t *testing.T, n int, batchBytes int64, fn func(t *testing.T, tr transport.Transport)) {
	t.Run("mem", func(t *testing.T) {
		tr := mem.New(fabric.Config{N: n, BaseLatency: 50 * time.Microsecond, Seed: 7,
			BatchBytes: batchBytes})
		defer tr.Close()
		fn(t, tr)
	})
	t.Run("tcp", func(t *testing.T) {
		tr, err := tcp.New(tcp.Config{N: n, BatchBytes: batchBytes})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		fn(t, tr)
	})
}

func appEnv(from, to, index int) *wire.Envelope {
	return &wire.Envelope{
		Kind: wire.KindApp, From: from, To: to, SendIndex: int64(index),
		Payload: []byte(fmt.Sprintf("m%d", index)),
	}
}

func mustSend(t *testing.T, tr transport.Transport, env *wire.Envelope, opts transport.SendOpts) {
	t.Helper()
	if err := tr.Send(env, opts); err != nil {
		t.Fatalf("send %d->%d index %d: %v", env.From, env.To, env.SendIndex, err)
	}
}

// waitDrained polls until no accepted message is outside an inbox.
func waitDrained(t *testing.T, tr transport.Transport) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for tr.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never drained: %d", tr.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestKindAndN(t *testing.T) {
	each(t, 3, func(t *testing.T, tr transport.Transport) {
		if tr.N() != 3 {
			t.Fatalf("N=%d, want 3", tr.N())
		}
		if k := tr.Kind(); k != transport.Mem && k != transport.TCP {
			t.Fatalf("unexpected kind %q", k)
		}
		for r := 0; r < 3; r++ {
			if !tr.Alive(r) {
				t.Fatalf("rank %d not alive at start", r)
			}
		}
	})
}

// checkFIFOPerPair: messages on one ordered pair arrive in send order.
func checkFIFOPerPair(t *testing.T, tr transport.Transport) {
	const count = 500
	in := tr.Inbox(1)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < count; i++ {
			env, ok := in.Recv()
			if !ok {
				done <- fmt.Errorf("inbox closed at %d", i)
				return
			}
			if env.SendIndex != int64(i) {
				done <- fmt.Errorf("got index %d, want %d", env.SendIndex, i)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < count; i++ {
		mustSend(t, tr, appEnv(0, 1, i), transport.SendOpts{})
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerPair(t *testing.T) {
	each(t, 2, checkFIFOPerPair)
}

// TestBatchedFIFOPerPair re-runs the ordering contract with send-side
// frame batching explicitly enabled on both implementations (the mem
// fabric defaults it off); coalescing frames into one link write must
// not reorder or drop anything.
func TestBatchedFIFOPerPair(t *testing.T) {
	eachWith(t, 2, 4<<10, checkFIFOPerPair)
}

// TestBatchedKillSemantics: with batching enabled, a kill still drops
// everything the inbox accepted and the revived incarnation sees only
// later traffic — batched frames must not resurrect across the window.
func TestBatchedKillSemantics(t *testing.T) {
	eachWith(t, 2, 4<<10, func(t *testing.T, tr transport.Transport) {
		for i := 0; i < 5; i++ {
			mustSend(t, tr, appEnv(0, 1, i), transport.SendOpts{})
		}
		waitDrained(t, tr)
		tr.Kill(1)
		tr.Revive(1)
		mustSend(t, tr, appEnv(0, 1, 100), transport.SendOpts{})
		env, ok := tr.Inbox(1).Recv()
		if !ok {
			t.Fatal("revived inbox closed")
		}
		if env.SendIndex != 100 {
			t.Fatalf("revived rank received pre-kill message %d", env.SendIndex)
		}
	})
}

// TestBatchingDisabled: a negative budget turns batching off on both
// implementations without changing the delivery contract.
func TestBatchingDisabled(t *testing.T) {
	eachWith(t, 2, -1, checkFIFOPerPair)
}

// TestKillUnblocksReceiver: a Recv blocked on the killed incarnation's
// inbox returns ok=false, and the stale handle stays dead after Revive.
func TestKillUnblocksReceiver(t *testing.T) {
	each(t, 2, func(t *testing.T, tr transport.Transport) {
		in := tr.Inbox(1)
		unblocked := make(chan bool, 1)
		go func() {
			_, ok := in.Recv()
			unblocked <- ok
		}()
		time.Sleep(10 * time.Millisecond)
		tr.Kill(1)
		select {
		case ok := <-unblocked:
			if ok {
				t.Fatal("Recv returned ok=true from a killed inbox")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Recv did not unblock on Kill")
		}
		tr.Revive(1)
		if _, ok := in.Recv(); ok {
			t.Fatal("stale inbox handle delivered after Revive")
		}
	})
}

// TestKillDropsInboxedMessages: messages already accepted by the inbox
// are lost with the incarnation; the revived rank sees only later
// traffic.
func TestKillDropsInboxedMessages(t *testing.T) {
	each(t, 2, func(t *testing.T, tr transport.Transport) {
		for i := 0; i < 5; i++ {
			mustSend(t, tr, appEnv(0, 1, i), transport.SendOpts{})
		}
		waitDrained(t, tr) // all five are in the inbox, none consumed
		tr.Kill(1)
		tr.Revive(1)
		mustSend(t, tr, appEnv(0, 1, 100), transport.SendOpts{})
		env, ok := tr.Inbox(1).Recv()
		if !ok {
			t.Fatal("revived inbox closed")
		}
		if env.SendIndex != 100 {
			t.Fatalf("revived rank received pre-kill message %d", env.SendIndex)
		}
	})
}

// TestParkedDeliveryAcrossDeadWindow: buffered sends accepted while the
// destination is dead park and reach the next incarnation, in order.
func TestParkedDeliveryAcrossDeadWindow(t *testing.T) {
	each(t, 2, func(t *testing.T, tr transport.Transport) {
		tr.Kill(1)
		for i := 0; i < 3; i++ {
			mustSend(t, tr, appEnv(0, 1, i), transport.SendOpts{})
		}
		time.Sleep(20 * time.Millisecond) // the dead window
		tr.Revive(1)
		in := tr.Inbox(1)
		for i := 0; i < 3; i++ {
			env, ok := in.Recv()
			if !ok {
				t.Fatalf("inbox closed at %d", i)
			}
			if env.SendIndex != int64(i) {
				t.Fatalf("parked delivery out of order: got %d, want %d", env.SendIndex, i)
			}
		}
	})
}

// TestRendezvousBlocksUntilAccepted: a rendezvous send to a dead rank
// completes only after Revive.
func TestRendezvousBlocksUntilAccepted(t *testing.T) {
	each(t, 2, func(t *testing.T, tr transport.Transport) {
		tr.Kill(1)
		done := make(chan error, 1)
		go func() {
			done <- tr.Send(appEnv(0, 1, 0), transport.SendOpts{Rendezvous: true})
		}()
		select {
		case err := <-done:
			t.Fatalf("rendezvous send to dead rank returned early: %v", err)
		case <-time.After(50 * time.Millisecond):
		}
		tr.Revive(1)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("rendezvous send after revive: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("rendezvous send never completed after Revive")
		}
		if env, ok := tr.Inbox(1).Recv(); !ok || env.SendIndex != 0 {
			t.Fatalf("revived rank did not receive the rendezvous message (ok=%v)", ok)
		}
	})
}

// TestAbortUnblocksRendezvous: the abort channel (the sender's own
// kill) releases a blocked rendezvous send with ErrAborted.
func TestAbortUnblocksRendezvous(t *testing.T) {
	each(t, 2, func(t *testing.T, tr transport.Transport) {
		tr.Kill(1)
		abort := make(chan struct{})
		done := make(chan error, 1)
		go func() {
			done <- tr.Send(appEnv(0, 1, 0), transport.SendOpts{Rendezvous: true, Abort: abort})
		}()
		time.Sleep(20 * time.Millisecond)
		close(abort)
		select {
		case err := <-done:
			if !errors.Is(err, transport.ErrAborted) {
				t.Fatalf("aborted rendezvous returned %v, want ErrAborted", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("abort did not unblock the rendezvous send")
		}
	})
}

// TestCrossPairConcurrency: concurrent senders to one destination each
// keep their own FIFO; nothing is lost without failures.
func TestCrossPairConcurrency(t *testing.T) {
	const senders, count = 3, 200
	each(t, senders+1, func(t *testing.T, tr transport.Transport) {
		dest := senders
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < count; i++ {
					if err := tr.Send(appEnv(s, dest, i), transport.SendOpts{}); err != nil {
						t.Errorf("send from %d: %v", s, err)
						return
					}
				}
			}(s)
		}
		in := tr.Inbox(dest)
		next := make([]int64, senders)
		for got := 0; got < senders*count; got++ {
			env, ok := in.Recv()
			if !ok {
				t.Fatalf("inbox closed after %d messages", got)
			}
			if env.SendIndex != next[env.From] {
				t.Fatalf("per-pair FIFO broken from %d: got %d, want %d",
					env.From, env.SendIndex, next[env.From])
			}
			next[env.From]++
		}
		wg.Wait()
	})
}

// TestLossWindowIsContiguous kills the destination mid-stream: the old
// incarnation reads a prefix, the kill loses a contiguous window, and
// the new incarnation receives a contiguous ordered suffix — the loss
// observable the recovery protocols are built against.
func TestLossWindowIsContiguous(t *testing.T) {
	const count = 1000
	each(t, 2, func(t *testing.T, tr transport.Transport) {
		oldIn := tr.Inbox(1)
		oldMax := int64(-1)
		oldDone := make(chan struct{})
		go func() {
			defer close(oldDone)
			prev := int64(-1)
			for {
				env, ok := oldIn.Recv()
				if !ok {
					return
				}
				if env.SendIndex != prev+1 {
					t.Errorf("old incarnation gap: got %d after %d", env.SendIndex, prev)
					return
				}
				prev = env.SendIndex
				oldMax = prev
			}
		}()

		go func() {
			for i := 0; i < count; i++ {
				// Sends may legitimately block while the destination is
				// dead and the link buffer fills; no failure expected.
				if err := tr.Send(appEnv(0, 1, i), transport.SendOpts{}); err != nil {
					t.Errorf("send %d: %v", i, err)
					return
				}
				if i%20 == 0 {
					// Pace the stream so the kill lands mid-flight.
					time.Sleep(100 * time.Microsecond)
				}
			}
		}()

		time.Sleep(2 * time.Millisecond)
		tr.Kill(1)
		<-oldDone
		if oldMax == count-1 {
			t.Log("kill landed after the full stream drained; loss window empty")
			return
		}
		time.Sleep(5 * time.Millisecond)
		tr.Revive(1)

		newIn := tr.Inbox(1)
		first, prev := int64(-1), int64(-1)
		for {
			env, ok := newIn.Recv()
			if !ok {
				t.Fatal("new incarnation inbox closed")
			}
			if first == -1 {
				first = env.SendIndex
				if first <= oldMax {
					t.Fatalf("new incarnation saw index %d already read by old (max %d)", first, oldMax)
				}
			} else if env.SendIndex != prev+1 {
				t.Fatalf("new incarnation gap: got %d after %d", env.SendIndex, prev)
			}
			prev = env.SendIndex
			if prev == count-1 {
				break
			}
		}
		t.Logf("old read [0..%d], lost (%d..%d), new received [%d..%d]",
			oldMax, oldMax, first, first, count-1)
	})
}

// TestCloseUnblocksEverything: Close releases blocked receivers and
// blocked rendezvous senders.
func TestCloseUnblocksEverything(t *testing.T) {
	each(t, 2, func(t *testing.T, tr transport.Transport) {
		recvDone := make(chan bool, 1)
		go func() {
			_, ok := tr.Inbox(1).Recv()
			recvDone <- ok
		}()
		tr.Kill(0) // only to make the send below park
		sendDone := make(chan error, 1)
		go func() {
			sendDone <- tr.Send(appEnv(1, 0, 0), transport.SendOpts{Rendezvous: true})
		}()
		time.Sleep(20 * time.Millisecond)
		tr.Close()
		select {
		case ok := <-recvDone:
			if ok {
				t.Fatal("Recv returned ok=true after Close")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close did not unblock Recv")
		}
		select {
		case err := <-sendDone:
			if err == nil {
				t.Fatal("blocked rendezvous send returned nil after Close")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close did not unblock the rendezvous send")
		}
	})
}

// TestStallParksDelivery: both implementations satisfy the optional
// Staller capability — while a rank is stalled, accepted messages stay
// in flight and its inbox receives nothing; Unstall releases them in
// FIFO order with no loss.
func TestStallParksDelivery(t *testing.T) {
	each(t, 2, func(t *testing.T, tr transport.Transport) {
		st, ok := tr.(transport.Staller)
		if !ok {
			t.Fatalf("%s transport does not implement Staller", tr.Kind())
		}
		st.Stall(1)
		for i := 0; i < 3; i++ {
			mustSend(t, tr, appEnv(0, 1, i), transport.SendOpts{})
		}
		in := tr.Inbox(1)
		got := make(chan *wire.Envelope, 3)
		go func() {
			for {
				env, ok := in.Recv()
				if !ok {
					return
				}
				got <- env
			}
		}()
		select {
		case env := <-got:
			t.Fatalf("stalled rank delivered message %d", env.SendIndex)
		case <-time.After(50 * time.Millisecond):
		}
		if tr.InFlight() == 0 {
			t.Fatal("stalled messages not counted as in flight")
		}
		st.Unstall(1)
		for i := 0; i < 3; i++ {
			select {
			case env := <-got:
				if env.SendIndex != int64(i) {
					t.Fatalf("post-stall delivery out of order: got %d, want %d", env.SendIndex, i)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("message %d never delivered after Unstall", i)
			}
		}
	})
}

// TestStallSurvivesKill: a kill during a stall loses only inboxed
// state; stalled-parked messages reach the next incarnation after
// Unstall, and the stall itself is independent of Revive.
func TestStallSurvivesKill(t *testing.T) {
	each(t, 2, func(t *testing.T, tr transport.Transport) {
		st := tr.(transport.Staller)
		st.Stall(1)
		for i := 0; i < 3; i++ {
			mustSend(t, tr, appEnv(0, 1, i), transport.SendOpts{})
		}
		time.Sleep(20 * time.Millisecond) // let the messages park at the stall
		tr.Kill(1)
		tr.Revive(1)
		in := tr.Inbox(1)
		got := make(chan *wire.Envelope, 3)
		go func() {
			for {
				env, ok := in.Recv()
				if !ok {
					return
				}
				got <- env
			}
		}()
		select {
		case env := <-got:
			t.Fatalf("still-stalled revived rank delivered message %d", env.SendIndex)
		case <-time.After(50 * time.Millisecond):
		}
		st.Unstall(1)
		for i := 0; i < 3; i++ {
			select {
			case env := <-got:
				if env.SendIndex != int64(i) {
					t.Fatalf("post-kill stalled delivery out of order: got %d, want %d", env.SendIndex, i)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("parked message %d never reached the new incarnation", i)
			}
		}
	})
}

// --- recv-batch drain ---

// batchInbox asserts the optional capability both implementations
// promise (see transport.BatchInbox).
func batchInbox(t *testing.T, in transport.Inbox) transport.BatchInbox {
	t.Helper()
	bi, ok := in.(transport.BatchInbox)
	if !ok {
		t.Fatalf("%T does not implement BatchInbox", in)
	}
	return bi
}

// TestRecvBatchFIFOAcrossBoundaries: chunked draining is invisible to
// ordering — concatenating batches of capacity 8 over a 200-message
// stream yields exactly the per-pair send order, no matter where the
// chunk boundaries land relative to sender-side frame batching.
func TestRecvBatchFIFOAcrossBoundaries(t *testing.T) {
	eachWith(t, 2, 4<<10, func(t *testing.T, tr transport.Transport) {
		in := batchInbox(t, tr.Inbox(1))
		const count = 200
		done := make(chan error, 1)
		go func() {
			buf := make([]*wire.Envelope, 0, 8)
			next := int64(0)
			for next < count {
				batch, ok := in.RecvBatch(buf[:0])
				if !ok {
					done <- fmt.Errorf("inbox closed at %d", next)
					return
				}
				if len(batch) == 0 {
					done <- fmt.Errorf("empty batch with ok=true at %d", next)
					return
				}
				for _, env := range batch {
					if env.SendIndex != next {
						done <- fmt.Errorf("batch broke FIFO: got %d, want %d", env.SendIndex, next)
						return
					}
					next++
				}
			}
			done <- nil
		}()
		for i := 0; i < count; i++ {
			mustSend(t, tr, appEnv(0, 1, i), transport.SendOpts{})
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	})
}

// TestRecvBatchFullBufYieldsOne: a buf with no spare capacity must
// still make progress — exactly one envelope, the queue head.
func TestRecvBatchFullBufYieldsOne(t *testing.T) {
	each(t, 2, func(t *testing.T, tr transport.Transport) {
		in := batchInbox(t, tr.Inbox(1))
		for i := 0; i < 3; i++ {
			mustSend(t, tr, appEnv(0, 1, i), transport.SendOpts{})
		}
		waitDrained(t, tr)
		batch, ok := in.RecvBatch(nil)
		if !ok || len(batch) != 1 || batch[0].SendIndex != 0 {
			t.Fatalf("RecvBatch(nil) = %v, %v; want exactly the head", batch, ok)
		}
	})
}

// TestRecvBatchPartialAtKill: a drain that consumed only a prefix when
// the rank dies. The consumed prefix stays consumed, the old handle
// reports closure without resurrecting the remainder (matching Recv's
// kill semantics), and the revived inbox sees only post-revival
// traffic.
func TestRecvBatchPartialAtKill(t *testing.T) {
	each(t, 2, func(t *testing.T, tr transport.Transport) {
		in := batchInbox(t, tr.Inbox(1))
		for i := 0; i < 6; i++ {
			mustSend(t, tr, appEnv(0, 1, i), transport.SendOpts{})
		}
		waitDrained(t, tr) // all six inboxed, none consumed
		buf := make([]*wire.Envelope, 0, 2)
		batch, ok := in.RecvBatch(buf)
		if !ok || len(batch) == 0 {
			t.Fatalf("first drain = %v, %v", batch, ok)
		}
		for i, env := range batch {
			if env.SendIndex != int64(i) {
				t.Fatalf("batch is not a queue prefix: %v", batch)
			}
		}
		tr.Kill(1)
		if rest, ok := in.RecvBatch(buf[:0]); ok {
			t.Fatalf("killed inbox handed out %d envelopes", len(rest))
		}
		tr.Revive(1)
		if rest, ok := in.RecvBatch(buf[:0]); ok {
			t.Fatalf("stale handle revived with %d envelopes", len(rest))
		}
		mustSend(t, tr, appEnv(0, 1, 100), transport.SendOpts{})
		nb := batchInbox(t, tr.Inbox(1))
		batch2, ok := nb.RecvBatch(nil)
		if !ok || len(batch2) != 1 || batch2[0].SendIndex != 100 {
			t.Fatalf("revived drain = %v, %v; want only the post-revival message", batch2, ok)
		}
	})
}

// TestRecvBatchKillUnblocks: a RecvBatch blocked on an empty inbox when
// the rank is killed unblocks with ok=false, like Recv.
func TestRecvBatchKillUnblocks(t *testing.T) {
	each(t, 2, func(t *testing.T, tr transport.Transport) {
		in := batchInbox(t, tr.Inbox(1))
		unblocked := make(chan bool, 1)
		go func() {
			_, ok := in.RecvBatch(nil)
			unblocked <- ok
		}()
		time.Sleep(10 * time.Millisecond)
		tr.Kill(1)
		select {
		case ok := <-unblocked:
			if ok {
				t.Fatal("RecvBatch returned ok=true from a killed inbox")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("RecvBatch did not unblock on Kill")
		}
	})
}
