// Package tcp implements transport.Transport over real TCP loopback
// connections: every ordered rank pair (from, to) gets its own TCP
// stream, so the kernel's byte-stream ordering is the per-link FIFO
// guarantee, and envelopes travel in the framed wire format
// (wire.AppendFrame / wire.FrameReader) rather than as in-process
// pointers.
//
// # Link protocol
//
// A connection starts with a hello (uvarint sender rank, uvarint
// connection generation) and then carries frames in the from→to
// direction. The sender keeps every frame buffered until the
// destination inbox accepts it. Acknowledgements do not travel back
// over the socket: the transport simulates a cluster inside one
// process, so the receive loop acknowledges in-process, atomically
// with the inbox push, making the accounting exact:
//
//   - an acknowledged frame was accepted by an inbox — if the rank is
//     later killed, the frame is lost with the inbox, exactly the
//     fabric's lost-message observable;
//   - an unacknowledged frame survives connection teardown and is
//     retransmitted, in order, on the next connection — so a message
//     accepted by Send while the destination is dead, or stranded in
//     the TCP stream when the kill closed the socket, parks on the
//     sender side and reaches the incarnation after Revive, exactly
//     the fabric's parked-delivery observable.
//
// Kill serializes with the push+ack critical section on the rank lock,
// so after Kill returns every frame the dead incarnation inboxed is
// acked and every other frame is still queued for retransmission: the
// loss window equals the inbox contents, never more, never less.
//
// # Crash semantics
//
// Kill(rank) closes every inbound connection of the rank and drops its
// inbox: bytes in flight on the wire and messages waiting in the inbox
// die with the incarnation. Outbound traffic already accepted from the
// rank keeps flowing — the link queues belong to the network, matching
// the fabric, whose links deliver a dead sender's in-flight messages.
// Senders reconnect after Revive with bounded exponential backoff.
package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"windar/internal/clock"
	"windar/internal/obs"
	"windar/internal/transport"
	"windar/internal/wire"
)

// Config describes the TCP transport.
type Config struct {
	// N is the number of ranks. Required.
	N int
	// LinkBufferBytes bounds the bytes pending (queued + unacked) per
	// link; a buffered send blocks while the link is over this. 0
	// means DefaultLinkBuffer.
	LinkBufferBytes int64
	// DialBackoffMax caps the reconnect backoff. 0 means 100ms.
	DialBackoffMax time.Duration
	// BatchBytes caps the bytes the link writer coalesces from its queue
	// into one vectored write. 0 means DefaultBatchBytes; negative
	// disables batching (one frame per write).
	BatchBytes int64
	// Seed makes the reconnect-backoff jitter reproducible. Each link
	// derives its own RNG.
	Seed int64
	// Clock paces the reconnect backoff; default the real clock.
	Clock clock.Clock
	// Backoff, when non-nil, records every reconnect backoff delay the
	// dialing rank sleeps (per dialing rank, in nanoseconds) — the
	// tail-latency signal loopback runs otherwise hide. The recorded
	// value includes jitter: it is the delay actually slept.
	Backoff *obs.Family
	// Batch, if non-nil, records per-sender batch occupancy (frames per
	// vectored write).
	Batch *obs.Family
}

// DefaultLinkBuffer is used when Config.LinkBufferBytes is zero; it
// matches the fabric's default so the two transports exert the same
// send-side backpressure.
const DefaultLinkBuffer = 1 << 20

// DefaultBatchBytes is the batched-write cap when Config.BatchBytes is
// zero: enough to coalesce a burst of small protocol frames without
// holding a large payload hostage behind the batch.
const DefaultBatchBytes = 64 << 10

// Transport is the TCP loopback transport. Create with New, release
// with Close.
type Transport struct {
	cfg        Config
	clk        clock.Clock
	n          int
	maxBuf     int64
	batchBytes int64 // effective batched-write cap; 0 = one frame per write

	listeners []net.Listener
	addrs     []string

	links []*link      // n*n, indexed from*n+to
	ranks []*rankState // destination-side state

	closeOnce sync.Once
	closed    chan struct{}
}

var (
	_ transport.Transport = (*Transport)(nil)
	_ transport.Staller   = (*Transport)(nil)
)

// New builds the transport: one loopback listener per rank, links
// created eagerly but dialed lazily on first use.
func New(cfg Config) (*Transport, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("tcp: invalid N=%d", cfg.N)
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.LinkBufferBytes == 0 {
		cfg.LinkBufferBytes = DefaultLinkBuffer
	}
	if cfg.DialBackoffMax == 0 {
		cfg.DialBackoffMax = 100 * time.Millisecond
	}
	batchBytes := cfg.BatchBytes
	if batchBytes == 0 {
		batchBytes = DefaultBatchBytes
	} else if batchBytes < 0 {
		batchBytes = 0
	}
	t := &Transport{
		cfg:        cfg,
		clk:        cfg.Clock,
		n:          cfg.N,
		maxBuf:     cfg.LinkBufferBytes,
		batchBytes: batchBytes,
		listeners:  make([]net.Listener, cfg.N),
		addrs:      make([]string, cfg.N),
		links:      make([]*link, cfg.N*cfg.N),
		ranks:      make([]*rankState, cfg.N),
		closed:     make(chan struct{}),
	}
	for rank := 0; rank < cfg.N; rank++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("tcp: listen for rank %d: %w", rank, err)
		}
		t.listeners[rank] = ln
		t.addrs[rank] = ln.Addr().String()
		t.ranks[rank] = newRankState()
		go t.acceptLoop(rank, ln)
	}
	for from := 0; from < cfg.N; from++ {
		for to := 0; to < cfg.N; to++ {
			l := &link{
				t: t, from: from, to: to, base: map[int64]int64{},
				rng:   rand.New(rand.NewSource(cfg.Seed ^ int64(from*cfg.N+to)*0x5851F42D4C957F2D ^ 0x5DEECE66D)),
				batch: cfg.Batch.Rank(from),
			}
			l.cond = sync.NewCond(&l.mu)
			t.links[from*cfg.N+to] = l
		}
	}
	return t, nil
}

// N implements transport.Transport.
func (t *Transport) N() int { return t.n }

// Kind implements transport.Transport.
func (t *Transport) Kind() transport.Kind { return transport.TCP }

func (t *Transport) isClosed() bool {
	select {
	case <-t.closed:
		return true
	default:
		return false
	}
}

// Send implements transport.Transport: the envelope is framed once into
// a pooled buffer and queued on the (From, To) link.
func (t *Transport) Send(env *wire.Envelope, opts transport.SendOpts) error {
	if env.From < 0 || env.From >= t.n || env.To < 0 || env.To >= t.n {
		return fmt.Errorf("tcp: bad endpoints %d->%d", env.From, env.To)
	}
	buf := getBuf()
	*buf = wire.AppendFrame((*buf)[:0], env)
	p := &pending{buf: buf, size: int64(len(*buf))}
	if opts.Rendezvous {
		p.done = make(chan struct{})
	}
	l := t.links[env.From*t.n+env.To]
	if err := l.enqueue(p, opts.Abort); err != nil {
		return err
	}
	if p.done != nil {
		select {
		case <-p.done:
		case <-opts.Abort:
			return transport.ErrAborted
		case <-t.closed:
			return transport.ErrAborted
		}
	}
	return nil
}

// Inbox implements transport.Transport.
func (t *Transport) Inbox(rank int) transport.Inbox {
	return t.ranks[rank].inbox()
}

// Kill implements transport.Transport: drop the rank's inbox, sever its
// inbound connections (in-flight bytes die with them), and wake blocked
// senders so they can observe their abort channels.
func (t *Transport) Kill(rank int) {
	r := t.ranks[rank]
	r.alive.Store(false)
	r.mu.Lock()
	old := r.box
	r.box = newInbox()
	conns := r.conns
	r.conns = map[net.Conn]struct{}{}
	r.stallCond.Broadcast() // stalled receive loops re-check box identity
	r.mu.Unlock()
	old.dropBox()
	for conn := range conns {
		conn.Close()
	}
	// Kills are rare: a global broadcast lets writers targeting the dead
	// rank park and blocked Sends poll their abort channels.
	for _, l := range t.links {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// Revive implements transport.Transport: the next inbound connections
// feed the incarnation's fresh inbox (installed at Kill), and parked
// links re-dial.
func (t *Transport) Revive(rank int) {
	r := t.ranks[rank]
	r.alive.Store(true)
	for from := 0; from < t.n; from++ {
		l := t.links[from*t.n+rank]
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// Stall implements transport.Staller: inbound receive loops hold
// frames unacked until Unstall, so parked messages survive kills via
// sender-side retransmission exactly like dead-window traffic.
func (t *Transport) Stall(rank int) {
	r := t.ranks[rank]
	r.mu.Lock()
	r.stalled = true
	r.mu.Unlock()
}

// Unstall implements transport.Staller.
func (t *Transport) Unstall(rank int) {
	r := t.ranks[rank]
	r.mu.Lock()
	r.stalled = false
	r.stallCond.Broadcast()
	r.mu.Unlock()
}

// Alive implements transport.Transport.
func (t *Transport) Alive(rank int) bool {
	return t.ranks[rank].alive.Load()
}

// InFlight implements transport.Transport: frames accepted by Send but
// not yet accepted by a destination inbox.
func (t *Transport) InFlight() int {
	total := 0
	for _, l := range t.links {
		if l == nil {
			continue
		}
		l.mu.Lock()
		total += len(l.queue) + len(l.unacked)
		l.mu.Unlock()
	}
	return total
}

// Close implements transport.Transport.
func (t *Transport) Close() {
	t.closeOnce.Do(func() {
		close(t.closed)
		for _, ln := range t.listeners {
			if ln != nil {
				ln.Close()
			}
		}
		for _, r := range t.ranks {
			if r == nil {
				continue
			}
			r.mu.Lock()
			conns := r.conns
			r.conns = map[net.Conn]struct{}{}
			box := r.box
			r.stallCond.Broadcast()
			r.mu.Unlock()
			box.closeBox()
			for conn := range conns {
				conn.Close()
			}
		}
		for _, l := range t.links {
			if l == nil {
				continue
			}
			l.mu.Lock()
			if l.conn != nil {
				l.conn.Close()
			}
			l.cond.Broadcast()
			l.mu.Unlock()
		}
	})
}

// acceptLoop serves one rank's listener until Close.
func (t *Transport) acceptLoop(rank int, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go t.serveConn(rank, conn)
	}
}

// serveConn is the receiver side of one link connection. It pins the
// rank's current inbox (incarnation isolation) and then, for every
// frame, pushes to the inbox and acknowledges the sender's link
// in-process — both under the rank lock, so a Kill observes either the
// full push+ack or neither. A connection accepted while the rank is
// dead is refused; the dialer parks until Revive.
func (t *Transport) serveConn(rank int, conn net.Conn) {
	from, gen, err := readHello(conn)
	if err != nil || from < 0 || int(from) >= t.n {
		conn.Close()
		return
	}
	l := t.links[int(from)*t.n+rank]

	r := t.ranks[rank]
	r.mu.Lock()
	if !r.alive.Load() {
		r.mu.Unlock()
		conn.Close()
		return
	}
	box := r.box
	r.conns[conn] = struct{}{}
	r.mu.Unlock()
	defer func() {
		conn.Close()
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
	}()

	fr := wire.NewFrameReader(conn)
	var count int64
	for {
		env, err := fr.Read()
		if err != nil {
			return
		}
		r.mu.Lock()
		// A stalled rank parks the frame unacked: the receive loop holds
		// it here, so InFlight counts it and Unstall releases it in
		// stream order. Box identity is re-checked after every wake — a
		// Kill during the stall closes this connection's incarnation.
		for r.stalled && r.box == box && !t.isClosed() {
			r.stallCond.Wait()
		}
		if r.box != box || t.isClosed() {
			// The incarnation this connection fed was killed; the frame
			// stays unacked and reaches the next incarnation via
			// retransmission on a fresh connection.
			r.mu.Unlock()
			return
		}
		box.push(env)
		count++
		l.ack(gen, count)
		r.mu.Unlock()
	}
}

// readHello reads the dial-time preamble (sender rank, connection
// generation) byte-by-byte so no stream bytes are over-buffered before
// the frame reader takes over.
func readHello(conn net.Conn) (from, gen int64, err error) {
	u := func() (int64, error) {
		var x uint64
		var s uint
		var b [1]byte
		for i := 0; i < binary.MaxVarintLen64; i++ {
			if _, err := io.ReadFull(conn, b[:]); err != nil {
				return 0, err
			}
			c := b[0]
			if c < 0x80 {
				return int64(x | uint64(c)<<s), nil
			}
			x |= uint64(c&0x7f) << s
			s += 7
		}
		return 0, fmt.Errorf("tcp: hello varint overflow")
	}
	if from, err = u(); err != nil {
		return 0, 0, err
	}
	if gen, err = u(); err != nil {
		return 0, 0, err
	}
	return from, gen, nil
}

// pending is one frame accepted by Send and not yet acknowledged.
type pending struct {
	buf  *[]byte       // pooled framed bytes
	size int64         // len(*buf)
	done chan struct{} // non-nil for rendezvous sends; closed on ack
}

// Frame buffers come from the wire package's shared scratch pool
// (wire.GetBuf/PutBuf). Buffers are only returned by the link writer
// goroutine, after the frame is acked and no Write can still reference
// it.
func getBuf() *[]byte  { return wire.GetBuf() }
func putBuf(b *[]byte) { wire.PutBuf(b) }

// link is the sender side of one ordered-pair TCP stream. A single
// writer goroutine preserves FIFO across dials; the in-process ack path
// trims the unacked window.
type link struct {
	t        *Transport
	from, to int

	mu           sync.Mutex
	cond         *sync.Cond
	queue        []*pending      // accepted, not yet written to the current conn
	unacked      []*pending      // written, awaiting ack from the inbox
	recycle      []*pending      // acked; buffers await pool return by the writer
	pendingBytes int64           // bytes across queue+unacked (bounded buffer)
	conn         net.Conn        // current connection, nil while down
	gen          int64           // generation of the current connection
	base         map[int64]int64 // lifetime ack total at each generation's birth
	acked        int64           // frames acked over the link's lifetime
	ackSeen      int64           // highest lifetime ack total observed
	started      bool            // writer goroutine launched

	// rng (backoff jitter) and batch (occupancy histogram, nil-safe)
	// are touched only by the writer goroutine.
	rng   *rand.Rand
	batch *obs.Hist
}

// enqueue adds p to the link, blocking while the bounded buffer is full
// (the limited communication-subsystem memory the paper blames for
// send-side blocking on large messages). The abort channel is polled
// around cond waits — as in the fabric, it is the sender's own kill,
// and Kill broadcasts every link.
func (l *link) enqueue(p *pending, abort <-chan struct{}) error {
	l.mu.Lock()
	if !l.started {
		l.started = true
		go l.run()
	}
	for l.pendingBytes+p.size > l.t.maxBuf && l.pendingBytes > 0 {
		select {
		case <-abort:
			l.mu.Unlock()
			return transport.ErrAborted
		case <-l.t.closed:
			l.mu.Unlock()
			return transport.ErrAborted
		default:
		}
		l.cond.Wait()
	}
	l.queue = append(l.queue, p)
	l.pendingBytes += p.size
	l.cond.Broadcast()
	l.mu.Unlock()
	return nil
}

// run is the link's writer: it dials when there is work and the
// destination is alive, retransmits the unacked window on every fresh
// connection, then streams the queue. Exits on transport Close.
func (l *link) run() {
	for {
		l.mu.Lock()
		l.recycleLocked()
		for {
			if l.t.isClosed() {
				l.mu.Unlock()
				return
			}
			if l.conn == nil {
				if (len(l.queue) > 0 || len(l.unacked) > 0) && l.t.Alive(l.to) {
					break
				}
			} else if len(l.queue) > 0 {
				break
			}
			l.cond.Wait()
		}

		if l.conn == nil {
			l.mu.Unlock()
			conn, ok := l.dial()
			if !ok {
				continue // closed, or destination died again: re-park
			}
			l.mu.Lock()
			l.conn = conn
			l.gen++
			gen := l.gen
			l.base[gen] = l.acked
			retrans := append([]*pending(nil), l.unacked...)
			l.mu.Unlock()
			// The receiver writes nothing back; a watchdog read detects
			// the connection dying (destination kill) even while this
			// writer is idle, so parked rendezvous frames reconnect.
			go l.watch(conn)
			if !l.writeHello(conn, gen) {
				continue
			}
			for _, p := range retrans {
				if !l.write(conn, p) {
					break
				}
			}
			continue
		}

		// Pop a batch of queued frames — head plus followers up to the
		// batched-write cap — into the unacked window BEFORE writing: a
		// write error then leaves every popped frame queued for
		// retransmission on the next connection.
		batch := []*pending{l.queue[0]}
		total := l.queue[0].size
		l.queue = l.queue[1:]
		if max := l.t.batchBytes; max > 0 {
			for len(l.queue) > 0 && total+l.queue[0].size <= max {
				batch = append(batch, l.queue[0])
				total += l.queue[0].size
				l.queue = l.queue[1:]
			}
		}
		l.unacked = append(l.unacked, batch...)
		conn := l.conn
		l.mu.Unlock()
		l.batch.Record(int64(len(batch)))
		if !l.writeBatch(conn, batch) {
			continue
		}
		// Frames may have been pushed and acked before they entered
		// the unacked window above; settle any ack total seen meanwhile.
		l.mu.Lock()
		l.drainAcksLocked()
		l.mu.Unlock()
	}
}

// writeHello sends the dial-time preamble identifying the sender rank
// and connection generation.
func (l *link) writeHello(conn net.Conn, gen int64) bool {
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(l.from))
	n += binary.PutUvarint(buf[n:], uint64(gen))
	if _, err := conn.Write(buf[:n]); err != nil {
		l.dropConn(conn)
		return false
	}
	return true
}

// write sends one frame; on error the connection is torn down and the
// frame stays in the unacked window for retransmission.
func (l *link) write(conn net.Conn, p *pending) bool {
	if _, err := conn.Write(*p.buf); err != nil {
		l.dropConn(conn)
		return false
	}
	return true
}

// writeBatch coalesces the batch into one vectored write (writev via
// net.Buffers; a plain Write when the batch is a single frame). On
// error the connection is torn down and every frame stays in the
// unacked window for retransmission.
func (l *link) writeBatch(conn net.Conn, batch []*pending) bool {
	if len(batch) == 1 {
		return l.write(conn, batch[0])
	}
	bufs := make(net.Buffers, len(batch))
	for i, p := range batch {
		bufs[i] = *p.buf
	}
	if _, err := bufs.WriteTo(conn); err != nil {
		l.dropConn(conn)
		return false
	}
	return true
}

// watch blocks reading the (otherwise silent) return direction of conn
// and retires the connection when it dies.
func (l *link) watch(conn net.Conn) {
	var b [1]byte
	for {
		if _, err := conn.Read(b[:]); err != nil {
			l.dropConn(conn)
			return
		}
	}
}

// dial connects to the destination with bounded exponential backoff,
// giving up when the transport closes or the destination dies.
func (l *link) dial() (net.Conn, bool) {
	backoff := time.Millisecond
	for {
		if l.t.isClosed() || !l.t.Alive(l.to) {
			return nil, false
		}
		conn, err := net.Dial("tcp", l.t.addrs[l.to])
		if err == nil {
			return conn, true
		}
		// Jitter desynchronizes the reconnect herd: every link dialing a
		// revived rank would otherwise retry on the same deterministic
		// schedule. Sleep a uniform pick from [backoff/2, backoff] and
		// record the delay actually slept.
		sleep := backoff/2 + time.Duration(l.rng.Int63n(int64(backoff/2)+1))
		l.t.cfg.Backoff.Rank(l.from).RecordDuration(sleep)
		select {
		case <-l.t.closed:
			return nil, false
		case <-l.t.clk.After(sleep):
		}
		if backoff *= 2; backoff > l.t.cfg.DialBackoffMax {
			backoff = l.t.cfg.DialBackoffMax
		}
	}
}

// dropConn retires conn if it is still the link's current connection.
func (l *link) dropConn(conn net.Conn) {
	conn.Close()
	l.mu.Lock()
	if l.conn == conn {
		l.conn = nil
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// ack records that the destination inbox accepted the count-th frame of
// connection generation gen. Called in-process by the receive loop,
// under the destination's rank lock.
func (l *link) ack(gen, count int64) {
	l.mu.Lock()
	if total := l.base[gen] + count; total > l.ackSeen {
		l.ackSeen = total
	}
	l.drainAcksLocked()
	l.mu.Unlock()
}

// drainAcksLocked settles the unacked window against the highest ack
// total seen: acked frames complete their rendezvous, free buffer
// space, and move to the recycle list (the writer returns buffers to
// the pool once no Write can reference them).
func (l *link) drainAcksLocked() {
	for l.acked < l.ackSeen && len(l.unacked) > 0 {
		p := l.unacked[0]
		l.unacked = l.unacked[1:]
		l.acked++
		l.pendingBytes -= p.size
		if p.done != nil {
			close(p.done)
		}
		l.recycle = append(l.recycle, p)
	}
	l.cond.Broadcast()
}

// recycleLocked returns acked frame buffers to the pool. Called only by
// the writer goroutine between writes, so no in-progress Write can
// still reference a recycled buffer.
func (l *link) recycleLocked() {
	for _, p := range l.recycle {
		putBuf(p.buf)
		p.buf = nil
	}
	l.recycle = l.recycle[:0]
}

// rankState is the destination-side view of one rank.
type rankState struct {
	alive     atomic.Bool
	mu        sync.Mutex
	stalled   bool       // delivery suspended (Stall), independent of alive
	stallCond *sync.Cond // on mu; broadcast on Unstall / Kill / Close
	box       *inbox
	conns     map[net.Conn]struct{} // inbound conns feeding the current incarnation
}

func newRankState() *rankState {
	r := &rankState{box: newInbox(), conns: map[net.Conn]struct{}{}}
	r.stallCond = sync.NewCond(&r.mu)
	r.alive.Store(true)
	return r
}

func (r *rankState) inbox() *inbox {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.box
}

// inbox is an unbounded closable FIFO of envelopes, the same shape as
// the fabric's: push after close silently discards (the message is lost
// with the incarnation's volatile state).
type inbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*wire.Envelope
	closed bool
}

func newInbox() *inbox {
	b := &inbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *inbox) push(env *wire.Envelope) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.queue = append(b.queue, env)
	b.cond.Signal()
	b.mu.Unlock()
}

// Recv implements transport.Inbox.
func (b *inbox) Recv() (*wire.Envelope, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.queue) == 0 {
		return nil, false
	}
	env := b.queue[0]
	b.queue = b.queue[1:]
	return env, true
}

// RecvBatch implements transport.BatchInbox: one blocking wait for the
// first envelope, then a non-blocking drain of whatever the connection
// readers pushed meanwhile, up to buf's capacity. A killed rank's inbox
// reports ok=false immediately (dropBox discarded its queue); a
// transport-shutdown close still drains the remainder, mirroring Recv.
func (b *inbox) RecvBatch(buf []*wire.Envelope) ([]*wire.Envelope, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.queue) == 0 {
		return buf, false
	}
	n := cap(buf) - len(buf)
	if n < 1 {
		n = 1
	}
	if n > len(b.queue) {
		n = len(b.queue)
	}
	buf = append(buf, b.queue[:n]...)
	rest := copy(b.queue, b.queue[n:])
	for i := rest; i < len(b.queue); i++ {
		b.queue[i] = nil // release delivered refs for the GC
	}
	b.queue = b.queue[:rest]
	return buf, true
}

// closeBox marks the box closed for transport shutdown: receivers drain
// whatever is already queued, then see ok=false.
func (b *inbox) closeBox() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// dropBox closes the box and discards everything queued. Kill uses this
// instead of closeBox: the dead incarnation's accepted-but-undelivered
// messages are volatile state and must die with it, so a receiver
// thread racing the kill can never hand stale envelopes to the next
// incarnation's delivery path.
func (b *inbox) dropBox() {
	b.mu.Lock()
	for i := range b.queue {
		b.queue[i] = nil
	}
	b.queue = nil
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
