package tcp

import (
	"sync"
	"testing"
	"time"

	"windar/internal/transport"
	"windar/internal/wire"
)

func newT(t *testing.T, cfg Config) *Transport {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tr.Close)
	return tr
}

// TestBoundedBufferBackpressure: once a link holds LinkBufferBytes of
// unacknowledged data toward a dead rank, further buffered sends block
// until the destination revives and drains — the limited
// communication-subsystem memory behaviour from the paper's Fig. 4(b).
func TestBoundedBufferBackpressure(t *testing.T) {
	tr := newT(t, Config{N: 2, LinkBufferBytes: 4096})
	tr.Kill(1)

	big := func(i int) *wire.Envelope {
		return &wire.Envelope{Kind: wire.KindApp, From: 0, To: 1,
			SendIndex: int64(i), Payload: make([]byte, 3000)}
	}
	// First send is admitted regardless of size (an empty link never
	// rejects), second overflows the 4096-byte bound and must block.
	if err := tr.Send(big(0), transport.SendOpts{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tr.Send(big(1), transport.SendOpts{}) }()
	select {
	case err := <-done:
		t.Fatalf("overflowing send returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	tr.Revive(1)
	in := tr.Inbox(1)
	for i := 0; i < 2; i++ {
		env, ok := in.Recv()
		if !ok || env.SendIndex != int64(i) {
			t.Fatalf("delivery %d: ok=%v env=%+v", i, ok, env)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked send failed after revive: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked send never unblocked after revive")
	}
}

// TestAbortUnblocksBufferedSend: a send blocked on the bounded buffer
// observes its abort channel. As in the fabric, the abort channel is
// the sending rank's own kill: it is polled at wakeups, and Kill
// provides the wakeup broadcast.
func TestAbortUnblocksBufferedSend(t *testing.T) {
	tr := newT(t, Config{N: 2, LinkBufferBytes: 1024})
	tr.Kill(1)
	if err := tr.Send(&wire.Envelope{Kind: wire.KindApp, From: 0, To: 1,
		Payload: make([]byte, 900)}, transport.SendOpts{}); err != nil {
		t.Fatal(err)
	}
	abort := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- tr.Send(&wire.Envelope{Kind: wire.KindApp, From: 0, To: 1, SendIndex: 1,
			Payload: make([]byte, 900)}, transport.SendOpts{Abort: abort})
	}()
	time.Sleep(20 * time.Millisecond)
	close(abort)
	tr.Kill(0) // the abort's source event; its broadcast wakes the waiter
	select {
	case err := <-done:
		if err != transport.ErrAborted {
			t.Fatalf("got %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not unblock the buffered send")
	}
}

// TestRepeatedKillReviveCycles hammers reconnects while a stream is in
// flight. Three invariants survive any interleaving: each incarnation
// sees strictly increasing indices, no index is inboxed twice across
// all incarnations (the in-process ack makes the loss window exact),
// and after the last revive the link converges — a final rendezvous
// marker is delivered.
func TestRepeatedKillReviveCycles(t *testing.T) {
	tr := newT(t, Config{N: 2})
	const total = 600
	const marker = int64(1 << 20)

	var rmu sync.Mutex
	received := map[int64]int{}
	markerSeen := make(chan struct{})
	readIncarnation := func(in transport.Inbox) {
		prev := int64(-1)
		for {
			env, ok := in.Recv()
			if !ok {
				return
			}
			if env.SendIndex <= prev {
				t.Errorf("incarnation saw %d after %d", env.SendIndex, prev)
				return
			}
			prev = env.SendIndex
			rmu.Lock()
			received[env.SendIndex]++
			rmu.Unlock()
			if env.SendIndex == marker {
				close(markerSeen)
				return
			}
		}
	}
	go readIncarnation(tr.Inbox(1))

	sendDone := make(chan struct{})
	go func() {
		defer close(sendDone)
		for i := 0; i < total; i++ {
			if err := tr.Send(&wire.Envelope{Kind: wire.KindApp, From: 0, To: 1,
				SendIndex: int64(i), Payload: []byte("x")}, transport.SendOpts{}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			if i%50 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	for cycle := 0; cycle < 5; cycle++ {
		time.Sleep(3 * time.Millisecond)
		tr.Kill(1)
		time.Sleep(2 * time.Millisecond)
		tr.Revive(1)
		go readIncarnation(tr.Inbox(1))
	}
	<-sendDone

	if err := tr.Send(&wire.Envelope{Kind: wire.KindApp, From: 0, To: 1,
		SendIndex: marker}, transport.SendOpts{Rendezvous: true}); err != nil {
		t.Fatalf("marker send: %v", err)
	}
	select {
	case <-markerSeen:
	case <-time.After(20 * time.Second):
		t.Fatal("marker never delivered after reconnect cycles")
	}

	rmu.Lock()
	defer rmu.Unlock()
	delivered := 0
	for idx, n := range received {
		if n > 1 {
			t.Errorf("index %d inboxed %d times; loss window not exact", idx, n)
		}
		if idx != marker {
			delivered++
		}
	}
	t.Logf("delivered %d/%d across 6 incarnations (rest lost to kills)", delivered, total)
}

// TestSelfSend: a rank's loopback link to itself works like any other.
func TestSelfSend(t *testing.T) {
	tr := newT(t, Config{N: 1})
	if err := tr.Send(&wire.Envelope{Kind: wire.KindApp, From: 0, To: 0,
		Payload: []byte("self")}, transport.SendOpts{Rendezvous: true}); err != nil {
		t.Fatal(err)
	}
	env, ok := tr.Inbox(0).Recv()
	if !ok || string(env.Payload) != "self" {
		t.Fatalf("self send lost: ok=%v env=%+v", ok, env)
	}
}

// TestBadEndpointsRejected: out-of-range ranks error instead of
// corrupting link state.
func TestBadEndpointsRejected(t *testing.T) {
	tr := newT(t, Config{N: 2})
	for _, env := range []*wire.Envelope{
		{Kind: wire.KindApp, From: -1, To: 0},
		{Kind: wire.KindApp, From: 0, To: 2},
	} {
		if err := tr.Send(env, transport.SendOpts{}); err == nil {
			t.Fatalf("send %d->%d accepted", env.From, env.To)
		}
	}
}
