// Package transport defines the communication substrate interface the
// rollback-recovery harness runs over. The substitution record's claim —
// that the logging protocols observe the network only through
// send/receive/latency/failure events — is made literal here: everything
// above this interface (harness, protocols, applications) is
// transport-agnostic, and the repository ships two implementations with
// identical observables:
//
//   - transport/mem: the in-process simulated fabric (internal/fabric)
//     with its latency/bandwidth/jitter model — deterministic-ish,
//     fast, and the substrate for the paper-figure experiments;
//   - transport/tcp: real TCP loopback connections, one stream per
//     ordered rank pair, with the framed wire format — the substrate
//     that proves the stack survives an actual byte stream.
//
// The failure contract every implementation must honour (it is what the
// recovery protocols are built against):
//
//   - per ordered pair (from, to), accepted messages are delivered in
//     FIFO order; across pairs, arrival order is unconstrained;
//   - Kill(rank) drops the rank's volatile receive state: messages
//     already handed to its inbox are lost, and receivers blocked on
//     the old incarnation's inbox unblock with ok=false;
//   - a message accepted by Send before or during a destination's dead
//     window, and not yet lost to the kill, is parked and delivered to
//     the incarnation after Revive — senders never observe the failure
//     except as latency;
//   - a rendezvous Send returns only once the destination's inbox has
//     accepted the message (blocking across the destination's dead
//     window); a buffered Send returns as soon as the link's bounded
//     buffer has space.
package transport

import (
	"errors"

	"windar/internal/wire"
)

// Kind names a transport implementation in configs, flags and traces.
type Kind = string

const (
	// Mem is the in-process simulated fabric.
	Mem Kind = "mem"
	// TCP is the real loopback TCP transport.
	TCP Kind = "tcp"
)

// ErrAborted is returned by Send when the caller's abort channel fires
// while the send is blocked (its own rank was killed), or when the
// transport shuts down under a blocked send.
var ErrAborted = errors.New("transport: send aborted")

// SendOpts controls one Send call.
type SendOpts struct {
	// Rendezvous makes Send return only once the destination inbox has
	// accepted the envelope (the synchronous MPI mode of Fig. 4(a)).
	Rendezvous bool
	// Abort unblocks a blocked Send with ErrAborted when it fires —
	// used when the sending rank itself is killed.
	Abort <-chan struct{}
}

// Inbox is a receiver handle pinned to one incarnation's message queue.
// Once the rank is killed, Recv on the old handle returns ok=false
// forever; the incarnation must obtain a fresh handle.
type Inbox interface {
	// Recv blocks for the next envelope on this handle's queue;
	// ok=false means the queue was closed (rank killed or transport
	// shut down).
	Recv() (*wire.Envelope, bool)
}

// BatchInbox is an optional Inbox capability: draining the queue in
// chunks, so a busy receiver pays one lock round and one wakeup per
// chunk instead of per message. RecvBatch blocks exactly like Recv until
// at least one envelope is available, then appends without further
// blocking whatever is already queued — up to buf's capacity (a buf with
// no spare capacity still yields one envelope) — and returns the
// extended slice with ok=true. The FIFO contract is unchanged: a batch
// is a prefix of the queue, so per-source order is exactly what repeated
// Recv calls would have seen. Close semantics mirror Recv: once the
// rank is killed the handle returns ok=false with an empty batch
// forever — envelopes the dead incarnation had accepted but not yet
// handed out are dropped with it (see Kill). Both implementations in
// this repository satisfy it; the harness receiver loop feature-tests
// for it and falls back to Recv.
type BatchInbox interface {
	Inbox
	// RecvBatch appends the next chunk of envelopes to buf.
	RecvBatch(buf []*wire.Envelope) ([]*wire.Envelope, bool)
}

// InlineSender is an optional Transport capability: a non-blocking
// synchronous send. TrySend returns true only when the envelope was
// accepted AND delivered to the destination's inbox before returning —
// possible when the transport's network model is instant (the in-memory
// fabric with zero latency and infinite bandwidth). ok=false carries no
// verdict about the destination; the caller falls back to Send, which
// owns the blocking, parking, and abort semantics. Because acceptance
// equals delivery, a successful TrySend satisfies a rendezvous send's
// contract too.
type InlineSender interface {
	// TrySend delivers env now or not at all.
	TrySend(env *wire.Envelope) bool
}

// Staller is an optional Transport capability: suspending delivery
// into a rank without killing it — the transport-level model of a
// transient partition in front of the rank. While stalled, accepted
// messages park exactly as during a dead window (InFlight counts
// them), but the rank's inbox and incarnation stay attached, so no
// state is lost and no recovery is triggered; Unstall releases the
// parked messages in per-link FIFO order. A stall is independent of
// Kill/Revive and survives both — callers must pair every Stall with
// an Unstall. Both implementations in this repository satisfy it; the
// chaos engine feature-tests for it.
type Staller interface {
	// Stall suspends delivery into rank.
	Stall(rank int)
	// Unstall resumes delivery into rank.
	Unstall(rank int)
}

// Transport is the cluster interconnect: N ranks, per-ordered-pair FIFO
// links, and the crash/recovery semantics documented on the package.
// Implementations are safe for concurrent use by all ranks.
type Transport interface {
	// N returns the number of ranks.
	N() int
	// Kind identifies the implementation ("mem", "tcp") for configs
	// and trace headers.
	Kind() Kind
	// Send transmits env from env.From to env.To. It returns
	// ErrAborted when opts.Abort fires or the transport closes while
	// the send is blocked; a live transport never fails an accepted
	// send for network reasons.
	Send(env *wire.Envelope, opts SendOpts) error
	// Inbox returns a handle pinned to rank's current incarnation
	// queue. Long-lived receiver loops must hold a handle rather than
	// re-resolving the rank, so a lingering receiver can never steal a
	// successor incarnation's messages.
	Inbox(rank int) Inbox
	// Kill marks rank dead, dropping its inbox contents and unblocking
	// its receivers. Messages subsequently accepted for it are parked
	// until Revive.
	Kill(rank int)
	// Revive brings rank back (as a new incarnation) and releases
	// parked deliveries destined to it.
	Revive(rank int)
	// Alive reports whether rank is currently alive.
	Alive(rank int) bool
	// InFlight reports the number of messages accepted but not yet
	// handed to a destination inbox (diagnostics and tests).
	InFlight() int
	// Close releases all resources; pending messages are dropped and
	// blocked calls unblock.
	Close()
}
