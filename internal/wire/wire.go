// Package wire defines the binary envelope format every message in the
// simulated cluster travels in, plus small codec helpers (varint vectors)
// shared by the logging protocols' piggyback encoders.
//
// The format is a compact varint framing, not a general-purpose
// serialization: the fabric is in-process, so the encoding exists to make
// byte accounting honest (piggyback size in Fig. 6 is measured on real
// encoded bytes) and to force protocols to round-trip their state the way
// a networked implementation would.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"windar/internal/vclock"
	"windar/layer"
)

// Kind discriminates the envelope types used by the rollback-recovery
// layer. Application payloads and every control message of Algorithm 1
// share one envelope format so that the fabric treats them uniformly.
type Kind uint8

const (
	// KindApp is an application message: logged by its sender,
	// piggybacked with protocol metadata, subject to delivery control.
	KindApp Kind = 1 + iota
	// KindRollback is the ROLLBACK broadcast an incarnation sends after
	// restoring its last checkpoint (Algorithm 1 line 46). Its payload is
	// the checkpointed last_deliver_index vector.
	KindRollback
	// KindResponse answers a ROLLBACK (line 48). Its payload carries the
	// responder's last_deliver_index entry for the recovering process so
	// repetitive sends can be suppressed.
	KindResponse
	// KindCkptAdvance is the CHECKPOINT_ADVANCE log-release notice
	// (line 36): the payload carries the checkpointed deliver index so
	// the receiver can free log items that can never be replayed again.
	KindCkptAdvance
	// KindDeterminant carries a batch of delivery-event determinants from
	// a process to the TEL stable event logger.
	KindDeterminant
	// KindDeterminantAck is the event logger's acknowledgement, carrying
	// the per-process stable event counts.
	KindDeterminantAck
)

// String implements fmt.Stringer for diagnostics and traces.
func (k Kind) String() string {
	switch k {
	case KindApp:
		return "APP"
	case KindRollback:
		return "ROLLBACK"
	case KindResponse:
		return "RESPONSE"
	case KindCkptAdvance:
		return "CKPT_ADVANCE"
	case KindDeterminant:
		return "DETERMINANT"
	case KindDeterminantAck:
		return "DETERMINANT_ACK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Envelope is the unit the fabric transports between ranks.
type Envelope struct {
	Kind        Kind
	From        int   // sender rank
	To          int   // destination rank
	Incarnation int32 // sender incarnation number at send time
	Tag         int32 // application tag (KindApp only)
	// SendIndex is the per-(From,To) application message counter
	// (last_send_index[To] at the sender when the message left). It
	// identifies the message for duplicate suppression and log replay.
	SendIndex int64
	// Resent marks a message re-transmitted from a sender log during a
	// peer's rolling forward, for tracing and metrics only — receivers
	// must treat resent and fresh copies identically.
	Resent    bool
	Piggyback []byte // protocol-owned metadata
	Payload   []byte // application bytes or control body
	// Span is the optional causal span context (flag bit flagSpan). A
	// zero context encodes exactly as the pre-span format, so traced and
	// untraced peers interoperate and old traces decode unchanged.
	Span layer.SpanContext

	// pigBuf is DecodeInto's piggyback scratch: Piggyback aliases it
	// after a pooled decode, so the storage survives Recycle and the
	// next decode reuses it. pooled marks an envelope obtained from
	// GetEnvelope as eligible for Recycle (see pool.go).
	pigBuf []byte
	pooled bool
}

// Envelope flag bits (the second encoded byte).
const (
	// flagResent marks a sender-log retransmission.
	flagResent byte = 1 << 0
	// flagSpan marks a span context appended after the payload (three
	// uvarints: trace, span, parent). Appending keeps the format
	// versioned and backward compatible: decoders that predate the flag
	// parse every original field identically and ignore the trailing
	// span bytes.
	flagSpan byte = 1 << 1
)

// Encode serializes e into a fresh byte slice.
func Encode(e *Envelope) []byte {
	return AppendEncode(make([]byte, 0, 32+len(e.Piggyback)+len(e.Payload)), e)
}

// AppendEncode appends e's encoding to buf and returns the extended
// slice. It is the allocation-free core of Encode: callers that reuse a
// buffer (the framed stream writers, the transport retransmission pool)
// pay no per-message allocation once the buffer has grown to a steady
// size.
//
//windar:hotpath
func AppendEncode(buf []byte, e *Envelope) []byte {
	buf = append(buf, byte(e.Kind))
	var flags byte
	if e.Resent {
		flags |= flagResent
	}
	if !e.Span.IsZero() {
		flags |= flagSpan
	}
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, int64(e.From))
	buf = binary.AppendVarint(buf, int64(e.To))
	buf = binary.AppendVarint(buf, int64(e.Incarnation))
	buf = binary.AppendVarint(buf, int64(e.Tag))
	buf = binary.AppendVarint(buf, e.SendIndex)
	buf = binary.AppendUvarint(buf, uint64(len(e.Piggyback)))
	buf = append(buf, e.Piggyback...)
	buf = binary.AppendUvarint(buf, uint64(len(e.Payload)))
	buf = append(buf, e.Payload...)
	if flags&flagSpan != 0 {
		buf = binary.AppendUvarint(buf, e.Span.Trace)
		buf = binary.AppendUvarint(buf, e.Span.Span)
		buf = binary.AppendUvarint(buf, e.Span.Parent)
	}
	return buf
}

// ErrTruncated reports a decode that ran out of bytes.
var ErrTruncated = errors.New("wire: truncated envelope")

// Decode parses an envelope previously produced by Encode.
func Decode(b []byte) (*Envelope, error) {
	if len(b) < 2 {
		return nil, ErrTruncated
	}
	flags := b[1]
	e := &Envelope{Kind: Kind(b[0]), Resent: flags&flagResent != 0}
	i := 2
	readInt := func() (int64, error) {
		v, n := binary.Varint(b[i:])
		if n <= 0 {
			return 0, ErrTruncated
		}
		i += n
		return v, nil
	}
	readBytes := func() ([]byte, error) {
		l, n := binary.Uvarint(b[i:])
		if n <= 0 {
			return nil, ErrTruncated
		}
		i += n
		if uint64(len(b)-i) < l {
			return nil, ErrTruncated
		}
		out := make([]byte, l)
		copy(out, b[i:i+int(l)])
		i += int(l)
		return out, nil
	}

	v, err := readInt()
	if err != nil {
		return nil, err
	}
	e.From = int(v)
	if v, err = readInt(); err != nil {
		return nil, err
	}
	e.To = int(v)
	if v, err = readInt(); err != nil {
		return nil, err
	}
	e.Incarnation = int32(v)
	if v, err = readInt(); err != nil {
		return nil, err
	}
	e.Tag = int32(v)
	if e.SendIndex, err = readInt(); err != nil {
		return nil, err
	}
	if e.Piggyback, err = readBytes(); err != nil {
		return nil, err
	}
	if e.Payload, err = readBytes(); err != nil {
		return nil, err
	}
	if flags&flagSpan != 0 {
		readUint := func() (uint64, error) {
			v, n := binary.Uvarint(b[i:])
			if n <= 0 {
				return 0, ErrTruncated
			}
			i += n
			return v, nil
		}
		if e.Span.Trace, err = readUint(); err != nil {
			return nil, err
		}
		if e.Span.Span, err = readUint(); err != nil {
			return nil, err
		}
		if e.Span.Parent, err = readUint(); err != nil {
			return nil, err
		}
	}
	if len(e.Piggyback) == 0 {
		e.Piggyback = nil
	}
	if len(e.Payload) == 0 {
		e.Payload = nil
	}
	return e, nil
}

// EncodedSize returns the number of bytes Encode would produce without
// allocating the buffer. The fabric uses it for transmission-time and
// bandwidth accounting.
//
//windar:hotpath
func EncodedSize(e *Envelope) int {
	n := 2
	n += varintLen(int64(e.From))
	n += varintLen(int64(e.To))
	n += varintLen(int64(e.Incarnation))
	n += varintLen(int64(e.Tag))
	n += varintLen(e.SendIndex)
	n += uvarintLen(uint64(len(e.Piggyback))) + len(e.Piggyback)
	n += uvarintLen(uint64(len(e.Payload))) + len(e.Payload)
	if !e.Span.IsZero() {
		n += uvarintLen(e.Span.Trace) + uvarintLen(e.Span.Span) + uvarintLen(e.Span.Parent)
	}
	return n
}

func varintLen(v int64) int {
	var tmp [binary.MaxVarintLen64]byte
	return binary.PutVarint(tmp[:], v)
}

func uvarintLen(v uint64) int {
	var tmp [binary.MaxVarintLen64]byte
	return binary.PutUvarint(tmp[:], v)
}

// AppendVec appends a length-prefixed varint encoding of v to buf and
// returns the extended slice. It is the shared piggyback primitive: TDI's
// entire piggyback is one such vector.
//
//windar:hotpath
func AppendVec(buf []byte, v vclock.Vec) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	for _, x := range v {
		buf = binary.AppendVarint(buf, x)
	}
	return buf
}

// ReadVec decodes a vector written by AppendVec from b, returning the
// vector and the number of bytes consumed.
func ReadVec(b []byte) (vclock.Vec, int, error) {
	return ReadVecInto(nil, b)
}

// ReadVecInto is ReadVec decoding into dst: when dst already has the
// encoded length its storage is reused, making the steady-state decode
// allocation-free; otherwise a fresh vector is allocated. On error dst's
// contents are unspecified and the returned vector is nil.
//
//windar:hotpath
func ReadVecInto(dst vclock.Vec, b []byte) (vclock.Vec, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, ErrTruncated
	}
	i := n
	if l > uint64(len(b)) { // cheap sanity bound before allocating
		return nil, 0, ErrTruncated
	}
	v := dst
	if uint64(len(v)) != l {
		v = vclock.New(int(l))
	}
	for j := range v {
		x, m := binary.Varint(b[i:])
		if m <= 0 {
			return nil, 0, ErrTruncated
		}
		v[j] = x
		i += m
	}
	return v, i, nil
}
