package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// frameCorpus returns one representative envelope per Kind, plus edge
// shapes (empty payloads, negative-ish varints, large piggyback).
func frameCorpus() []*Envelope {
	return []*Envelope{
		{Kind: KindApp, From: 0, To: 1, Incarnation: 0, Tag: 0, SendIndex: 1,
			Piggyback: []byte{1, 2, 3}, Payload: []byte("hello")},
		{Kind: KindRollback, From: 3, To: 0, Incarnation: 2, SendIndex: 0,
			Payload: bytes.Repeat([]byte{0xAB}, 100)},
		{Kind: KindResponse, From: 1, To: 3, Incarnation: 1, Payload: []byte{0}},
		{Kind: KindCkptAdvance, From: 7, To: 2, Incarnation: 5, Payload: []byte{2, 4}},
		{Kind: KindDeterminant, From: 2, To: 6, Tag: -1, SendIndex: 1 << 40,
			Piggyback: bytes.Repeat([]byte{7}, 300)},
		{Kind: KindDeterminantAck, From: 6, To: 2, Incarnation: 1 << 20},
		{Kind: KindApp, From: 31, To: 30, Tag: 99, SendIndex: 12345, Resent: true},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, env := range frameCorpus() {
		buf := AppendFrame(nil, env)
		if len(buf) != FrameSize(env) {
			t.Errorf("FrameSize(%v) = %d, encoded %d", env.Kind, FrameSize(env), len(buf))
		}
		got, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("DecodeFrame(%v): %v", env.Kind, err)
		}
		if n != len(buf) {
			t.Errorf("DecodeFrame(%v) consumed %d of %d", env.Kind, n, len(buf))
		}
		assertEnvelopeEqual(t, env, got)
	}
}

func TestFrameStream(t *testing.T) {
	corpus := frameCorpus()
	var stream bytes.Buffer
	fw := NewFrameWriter(&stream)
	for _, env := range corpus {
		if err := fw.Write(env); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	fr := NewFrameReader(&stream)
	for i, env := range corpus {
		got, err := fr.Read()
		if err != nil {
			t.Fatalf("Read #%d: %v", i, err)
		}
		assertEnvelopeEqual(t, env, got)
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("Read past end = %v, want io.EOF", err)
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	good := AppendFrame(nil, frameCorpus()[0])

	// Truncations at every prefix length must error, never panic.
	for i := 0; i < len(good); i++ {
		if _, _, err := DecodeFrame(good[:i]); err == nil {
			t.Errorf("DecodeFrame of %d-byte prefix succeeded", i)
		}
	}

	bad := append([]byte(nil), good...)
	bad[0] = 0x00
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameMagic) {
		t.Errorf("bad magic: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[1] = FrameVersion + 1
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameVersion) {
		t.Errorf("bad version: %v", err)
	}

	// A hostile length prefix must be rejected before allocation.
	huge := []byte{FrameMagic, FrameVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("huge length: %v", err)
	}

	fr := NewFrameReader(bytes.NewReader(good[:len(good)-2]))
	if _, err := fr.Read(); err != io.ErrUnexpectedEOF {
		t.Errorf("stream truncated mid-frame: %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFrameReaderRejectsVersionSkew(t *testing.T) {
	buf := AppendFrame(nil, frameCorpus()[0])
	buf[1] = 9
	if _, err := NewFrameReader(bytes.NewReader(buf)).Read(); !errors.Is(err, ErrFrameVersion) {
		t.Fatalf("version 9 accepted: %v", err)
	}
}

func assertEnvelopeEqual(t *testing.T, want, got *Envelope) {
	t.Helper()
	// Decode canonicalizes empty slices to nil; normalize before compare.
	w := *want
	if len(w.Piggyback) == 0 {
		w.Piggyback = nil
	}
	if len(w.Payload) == 0 {
		w.Payload = nil
	}
	if !reflect.DeepEqual(&w, got) {
		t.Errorf("round trip mismatch:\nwant %+v\ngot  %+v", &w, got)
	}
}
