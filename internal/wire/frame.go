package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Framing wraps the in-process envelope encoding into a self-describing
// byte-stream format so envelopes survive a real transport (TCP) where
// message boundaries do not exist. Each frame is:
//
//	byte 0: magic (FrameMagic) — guards against stream misalignment
//	byte 1: format version (FrameVersion)
//	uvarint: body length
//	body: AppendEncode output
//
// The header is per-frame rather than per-stream so a reader can resync
// diagnostics on corruption and a stream can in principle mix versions
// during a rolling upgrade.
const (
	// FrameMagic is the first byte of every frame.
	FrameMagic = 0xD7
	// FrameVersion is the current frame format version.
	FrameVersion = 1
	// MaxFrameBody bounds a frame body so a corrupt or hostile length
	// prefix cannot drive an arbitrary allocation.
	MaxFrameBody = 64 << 20
)

// Framing errors. ErrTruncated (shared with Decode) reports a frame cut
// short.
var (
	ErrFrameMagic    = errors.New("wire: bad frame magic")
	ErrFrameVersion  = errors.New("wire: unsupported frame version")
	ErrFrameTooLarge = errors.New("wire: frame body exceeds limit")
)

// AppendFrame appends the framed encoding of e to buf and returns the
// extended slice. Like AppendEncode it allocates nothing once buf has
// steady-state capacity.
//
//windar:hotpath
func AppendFrame(buf []byte, e *Envelope) []byte {
	buf = append(buf, FrameMagic, FrameVersion)
	buf = binary.AppendUvarint(buf, uint64(EncodedSize(e)))
	return AppendEncode(buf, e)
}

// FrameSize returns the number of bytes AppendFrame would append for e.
//
//windar:hotpath
func FrameSize(e *Envelope) int {
	n := EncodedSize(e)
	return 2 + uvarintLen(uint64(n)) + n
}

// DecodeFrame parses one frame from the front of b, returning the
// envelope and the number of bytes consumed. It is the slice-based dual
// of FrameReader.Read, used by tests and fuzzing.
func DecodeFrame(b []byte) (*Envelope, int, error) {
	if len(b) < 2 {
		return nil, 0, ErrTruncated
	}
	if b[0] != FrameMagic {
		return nil, 0, ErrFrameMagic
	}
	if b[1] != FrameVersion {
		return nil, 0, fmt.Errorf("%w: %d", ErrFrameVersion, b[1])
	}
	l, n := binary.Uvarint(b[2:])
	if n <= 0 {
		return nil, 0, ErrTruncated
	}
	if l > MaxFrameBody {
		return nil, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, l)
	}
	body := b[2+n:]
	if uint64(len(body)) < l {
		return nil, 0, ErrTruncated
	}
	env, err := Decode(body[:l])
	if err != nil {
		return nil, 0, err
	}
	return env, 2 + n + int(l), nil
}

// FrameWriter writes framed envelopes to an underlying stream, reusing
// one internal buffer so the steady-state encode path allocates nothing.
// Not safe for concurrent use.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter returns a FrameWriter on w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w}
}

// Write frames e onto the stream in a single underlying Write call, so
// a frame is never interleaved even if the caller alternates writers on
// one connection.
func (fw *FrameWriter) Write(e *Envelope) error {
	fw.buf = AppendFrame(fw.buf[:0], e)
	_, err := fw.w.Write(fw.buf)
	return err
}

// FrameReader reads framed envelopes from a byte stream, reusing one
// internal body buffer across frames. Not safe for concurrent use.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewFrameReader returns a FrameReader on r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Read parses the next frame. io.EOF is returned verbatim at a clean
// frame boundary; a frame cut short mid-way surfaces as
// io.ErrUnexpectedEOF.
//
// The decoded envelope itself is a fresh allocation by contract (the
// inbox retains it past the next Read); only the body buffer is reused.
//
//windar:hotpath
func (fr *FrameReader) Read() (*Envelope, error) {
	magic, err := fr.r.ReadByte()
	if err != nil {
		return nil, err
	}
	if magic != FrameMagic {
		return nil, ErrFrameMagic
	}
	version, err := fr.r.ReadByte()
	if err != nil {
		return nil, eofIsUnexpected(err)
	}
	if version != FrameVersion {
		return nil, errFrameVersion(version)
	}
	l, err := binary.ReadUvarint(fr.r)
	if err != nil {
		return nil, eofIsUnexpected(err)
	}
	if l > MaxFrameBody {
		return nil, errFrameTooLarge(l)
	}
	if uint64(cap(fr.buf)) < l {
		fr.buf = make([]byte, l) //windar:allow hotpath (amortized: grows to the stream's largest frame once, then reused)
	}
	body := fr.buf[:l]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return nil, eofIsUnexpected(err)
	}
	return Decode(body)
}

// errFrameVersion and errFrameTooLarge format their errors outside the
// annotated span: fmt boxing allocates, and these paths only run on a
// corrupt or incompatible stream. noinline keeps the boxing attributed
// here under escape analysis.
//
//go:noinline
func errFrameVersion(version byte) error {
	return fmt.Errorf("%w: %d", ErrFrameVersion, version)
}

//go:noinline
func errFrameTooLarge(l uint64) error {
	return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, l)
}

// eofIsUnexpected maps a bare EOF inside a frame to io.ErrUnexpectedEOF.
func eofIsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
