package wire

import (
	"testing"

	"windar/internal/vclock"
)

func benchEnvelope(payload, pig int) *Envelope {
	return &Envelope{
		Kind: KindApp, From: 3, To: 17, Incarnation: 1, Tag: 42,
		SendIndex: 123456,
		Piggyback: make([]byte, pig),
		Payload:   make([]byte, payload),
	}
}

func BenchmarkEncode(b *testing.B) {
	for _, c := range []struct {
		name         string
		payload, pig int
	}{
		{"small", 64, 32},
		{"luLine", 480, 32},
		{"btFace", 28800, 32},
	} {
		b.Run(c.name, func(b *testing.B) {
			env := benchEnvelope(c.payload, c.pig)
			b.ReportAllocs()
			b.SetBytes(int64(EncodedSize(env)))
			for i := 0; i < b.N; i++ {
				_ = Encode(env)
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, c := range []struct {
		name         string
		payload, pig int
	}{
		{"small", 64, 32},
		{"btFace", 28800, 32},
	} {
		b.Run(c.name, func(b *testing.B) {
			buf := Encode(benchEnvelope(c.payload, c.pig))
			b.ReportAllocs()
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				if _, err := Decode(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVecCodec(b *testing.B) {
	for _, n := range []int{4, 32} {
		b.Run(map[int]string{4: "n4", 32: "n32"}[n], func(b *testing.B) {
			v := vclock.New(n)
			for i := range v {
				v[i] = int64(i * 1000)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf := AppendVec(nil, v)
				if _, _, err := ReadVec(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
