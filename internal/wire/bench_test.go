package wire

import (
	"bytes"
	"io"
	"testing"

	"windar/internal/vclock"
)

func benchEnvelope(payload, pig int) *Envelope {
	return &Envelope{
		Kind: KindApp, From: 3, To: 17, Incarnation: 1, Tag: 42,
		SendIndex: 123456,
		Piggyback: make([]byte, pig),
		Payload:   make([]byte, payload),
	}
}

func BenchmarkEncode(b *testing.B) {
	for _, c := range []struct {
		name         string
		payload, pig int
	}{
		{"small", 64, 32},
		{"luLine", 480, 32},
		{"btFace", 28800, 32},
	} {
		b.Run(c.name, func(b *testing.B) {
			env := benchEnvelope(c.payload, c.pig)
			b.ReportAllocs()
			b.SetBytes(int64(EncodedSize(env)))
			for i := 0; i < b.N; i++ {
				_ = Encode(env)
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, c := range []struct {
		name         string
		payload, pig int
	}{
		{"small", 64, 32},
		{"btFace", 28800, 32},
	} {
		b.Run(c.name, func(b *testing.B) {
			buf := Encode(benchEnvelope(c.payload, c.pig))
			b.ReportAllocs()
			b.SetBytes(int64(len(buf)))
			for i := 0; i < b.N; i++ {
				if _, err := Decode(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrameWrite measures the pooled framed-encode hot path used by
// the tcp transport: one reused buffer, one Write call per envelope.
func BenchmarkFrameWrite(b *testing.B) {
	for _, c := range []struct {
		name         string
		payload, pig int
	}{
		{"small", 64, 32},
		{"btFace", 28800, 32},
	} {
		b.Run(c.name, func(b *testing.B) {
			env := benchEnvelope(c.payload, c.pig)
			fw := NewFrameWriter(io.Discard)
			b.ReportAllocs()
			b.SetBytes(int64(FrameSize(env)))
			for i := 0; i < b.N; i++ {
				if err := fw.Write(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestEncodeAllocRegression pins the allocation counts of the envelope
// encode paths: the seed baseline (Encode) allocates one buffer per
// message; the pooled framed path (FrameWriter with a reused buffer)
// must allocate strictly less — zero in steady state.
func TestEncodeAllocRegression(t *testing.T) {
	env := benchEnvelope(480, 32)

	baseline := testing.AllocsPerRun(200, func() {
		_ = Encode(env)
	})
	if baseline < 1 {
		t.Fatalf("seed baseline Encode allocates %.1f/op; expected at least 1 (the buffer)", baseline)
	}

	fw := NewFrameWriter(io.Discard)
	fw.Write(env) // warm the reused buffer
	pooled := testing.AllocsPerRun(200, func() {
		if err := fw.Write(env); err != nil {
			t.Fatal(err)
		}
	})
	if pooled != 0 {
		t.Errorf("pooled FrameWriter.Write allocates %.1f/op, want 0", pooled)
	}
	if pooled >= baseline {
		t.Errorf("pooled encode path allocates %.1f/op, baseline Encode %.1f/op; pooling regressed", pooled, baseline)
	}

	appendPath := testing.AllocsPerRun(200, func() {
		fw.buf = AppendEncode(fw.buf[:0], env)
	})
	if appendPath != 0 {
		t.Errorf("AppendEncode into a warm buffer allocates %.1f/op, want 0", appendPath)
	}
}

// TestDecodeAllocRegression pins the framed decode path: FrameReader
// reuses its body buffer, so reading a framed envelope from a stream
// must not allocate more than the bare Decode baseline (which must copy
// out the envelope, piggyback and payload).
func TestDecodeAllocRegression(t *testing.T) {
	env := benchEnvelope(480, 32)
	encoded := Encode(env)

	baseline := testing.AllocsPerRun(200, func() {
		if _, err := Decode(encoded); err != nil {
			t.Fatal(err)
		}
	})

	framed := AppendFrame(nil, env)
	var stream bytes.Reader
	fr := NewFrameReader(&stream)
	stream.Reset(framed)
	if _, err := fr.Read(); err != nil { // warm the body buffer
		t.Fatal(err)
	}
	pooled := testing.AllocsPerRun(200, func() {
		stream.Reset(framed)
		if _, err := fr.Read(); err != nil {
			t.Fatal(err)
		}
	})
	// The framed path adds stream handling on top of Decode; buffer reuse
	// must make that addition free.
	if pooled > baseline {
		t.Errorf("framed decode allocates %.1f/op, bare Decode %.1f/op; frame buffer pooling regressed",
			pooled, baseline)
	}
}

func BenchmarkVecCodec(b *testing.B) {
	for _, n := range []int{4, 32} {
		b.Run(map[int]string{4: "n4", 32: "n32"}[n], func(b *testing.B) {
			v := vclock.New(n)
			for i := range v {
				v[i] = int64(i * 1000)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf := AppendVec(nil, v)
				if _, _, err := ReadVec(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
