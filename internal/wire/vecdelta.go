// Delta encoding for piggyback vectors (wire format v2).
//
// A full vector keeps the v1 layout of AppendVec unchanged: uvarint
// length followed by the varint elements. Because a system has at least
// one rank, a full vector's first byte is always >= 0x01, which frees
// the byte 0x00 as an unambiguous delta marker:
//
//	delta := 0x00 | uvarint(changed) | changed × (uvarint index, varint value)
//
// The pairs carry ABSOLUTE values (not diffs) at strictly increasing
// indices, so applying a delta is idempotent: re-applying it to the
// post-state is a no-op. That property lets readers re-decode a
// message against an already-advanced base (e.g. extracting the
// delivery demand after the delivery merged the vector) and still get
// the exact reconstruction.
//
// A delta is only decodable against the previous vector on the same
// FIFO channel; ReadVecDelta takes that base explicitly and fails with
// ErrNoDeltaBase when the caller has none (a fresh incarnation before
// the sender's next full refresh, handled by core.TDI's refresh
// cadence and pinned-full recovery mode).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"windar/internal/vclock"
)

// VecDeltaMarker is the first byte of a delta-encoded vector. A v1 full
// vector can never start with it: its first byte is the uvarint element
// count, and every real system has n >= 1.
const VecDeltaMarker = 0x00

// ErrNoDeltaBase reports a delta-encoded vector arriving at a reader
// that holds no base vector to apply it to.
var ErrNoDeltaBase = errors.New("wire: delta vector without base")

// ErrBadDelta reports a structurally invalid delta: indices out of
// range, not strictly increasing, or a count exceeding the base length.
var ErrBadDelta = errors.New("wire: malformed delta vector")

// AppendVecDelta appends the delta encoding of cur relative to base and
// returns the extended slice. It panics on a length mismatch, because
// mixing vectors from systems of different sizes is always a
// programming error (matching vclock's contract).
//
//windar:hotpath
func AppendVecDelta(buf []byte, base, cur vclock.Vec) []byte {
	if len(base) != len(cur) {
		panicDeltaLen(len(base), len(cur))
	}
	changed := 0
	for i := range cur {
		if cur[i] != base[i] {
			changed++
		}
	}
	buf = append(buf, VecDeltaMarker)
	buf = binary.AppendUvarint(buf, uint64(changed))
	for i := range cur {
		if cur[i] != base[i] {
			buf = binary.AppendUvarint(buf, uint64(i))
			buf = binary.AppendVarint(buf, cur[i])
		}
	}
	return buf
}

// panicDeltaLen lives outside the annotated spans: formatting the panic
// message boxes its operands, an allocation the hot path never performs
// but escape analysis would charge to the caller's line. noinline keeps
// the attribution here.
//
//go:noinline
func panicDeltaLen(base, cur int) {
	panic(fmt.Sprintf("wire: delta base length %d != %d", base, cur))
}

// VecSize returns the number of bytes AppendVec would produce for v.
//
//windar:hotpath
func VecSize(v vclock.Vec) int {
	n := uvarintLen(uint64(len(v)))
	for _, x := range v {
		n += varintLen(x)
	}
	return n
}

// VecDeltaSize returns the number of bytes AppendVecDelta would produce
// without allocating; the sender uses it to pick the smaller encoding.
//
//windar:hotpath
func VecDeltaSize(base, cur vclock.Vec) int {
	if len(base) != len(cur) {
		panicDeltaLen(len(base), len(cur))
	}
	changed := 0
	n := 1 // marker
	for i := range cur {
		if cur[i] != base[i] {
			changed++
			n += uvarintLen(uint64(i)) + varintLen(cur[i])
		}
	}
	return n + uvarintLen(uint64(changed))
}

// VecChanged counts the elements that differ between base and cur — the
// pair count a delta would carry.
//
//windar:hotpath
func VecChanged(base, cur vclock.Vec) int {
	changed := 0
	for i := range cur {
		if cur[i] != base[i] {
			changed++
		}
	}
	return changed
}

// ReadVecDelta decodes a delta written by AppendVecDelta and applies it
// to base, returning the reconstructed vector (an independent copy;
// base is never mutated) and the number of bytes consumed. base must be
// the previous vector decoded on the same channel; nil base fails with
// ErrNoDeltaBase.
func ReadVecDelta(b []byte, base vclock.Vec) (vclock.Vec, int, error) {
	return ReadVecDeltaInto(nil, b, base)
}

// ReadVecDeltaInto is ReadVecDelta decoding into dst: when dst has
// base's length its storage is reused (the steady-state decode becomes
// allocation-free), otherwise a fresh vector is allocated. dst must not
// alias base. On error dst's contents are unspecified and the returned
// vector is nil.
//
//windar:hotpath
func ReadVecDeltaInto(dst vclock.Vec, b []byte, base vclock.Vec) (vclock.Vec, int, error) {
	if len(b) == 0 || b[0] != VecDeltaMarker {
		return nil, 0, ErrBadDelta
	}
	if base == nil {
		return nil, 0, ErrNoDeltaBase
	}
	i := 1
	count, n := binary.Uvarint(b[i:])
	if n <= 0 {
		return nil, 0, ErrTruncated
	}
	i += n
	if count > uint64(len(base)) {
		// Strictly increasing indices bounded by len(base) cap the pair
		// count; a larger claim is garbage, rejected before any work.
		return nil, 0, ErrBadDelta
	}
	var v vclock.Vec
	if len(dst) == len(base) {
		v = dst
		v.CopyFrom(base)
	} else {
		v = base.Clone()
	}
	prev := -1
	for j := uint64(0); j < count; j++ {
		idx, m := binary.Uvarint(b[i:])
		if m <= 0 {
			return nil, 0, ErrTruncated
		}
		i += m
		if idx >= uint64(len(base)) || int(idx) <= prev {
			return nil, 0, ErrBadDelta
		}
		val, m := binary.Varint(b[i:])
		if m <= 0 {
			return nil, 0, ErrTruncated
		}
		i += m
		v[idx] = val
		prev = int(idx)
	}
	return v, i, nil
}

// ReadVecAny decodes either encoding: a v1 full vector (returned as-is,
// base unused) or a v2 delta applied to base. isDelta reports which
// layout was seen, so callers can account refresh cadence.
func ReadVecAny(b []byte, base vclock.Vec) (v vclock.Vec, n int, isDelta bool, err error) {
	return ReadVecAnyInto(nil, b, base)
}

// ReadVecAnyInto is ReadVecAny decoding into dst (see ReadVecDeltaInto
// for the reuse contract; dst must not alias base).
//
//windar:hotpath
func ReadVecAnyInto(dst vclock.Vec, b []byte, base vclock.Vec) (v vclock.Vec, n int, isDelta bool, err error) {
	if len(b) == 0 {
		return nil, 0, false, ErrTruncated
	}
	if b[0] == VecDeltaMarker {
		v, n, err = ReadVecDeltaInto(dst, b, base)
		return v, n, true, err
	}
	v, n, err = ReadVecInto(dst, b)
	return v, n, false, err
}
