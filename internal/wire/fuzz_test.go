package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the envelope decoder. Decode must
// never panic, and any envelope it accepts must re-encode to a form that
// decodes to the identical envelope (the codec is stable after one
// round).
func FuzzDecode(f *testing.F) {
	for _, env := range frameCorpus() {
		f.Add(Encode(env))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindApp)})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		env, err := Decode(b)
		if err != nil {
			return
		}
		re := Encode(env)
		env2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of accepted envelope failed: %v", err)
		}
		if env.Kind != env2.Kind || env.From != env2.From || env.To != env2.To ||
			env.Incarnation != env2.Incarnation || env.Tag != env2.Tag ||
			env.SendIndex != env2.SendIndex || env.Resent != env2.Resent ||
			!bytes.Equal(env.Piggyback, env2.Piggyback) || !bytes.Equal(env.Payload, env2.Payload) {
			t.Fatalf("unstable round trip:\nfirst  %+v\nsecond %+v", env, env2)
		}
		if len(Encode(env2)) != EncodedSize(env2) {
			t.Fatalf("EncodedSize disagrees with Encode for %+v", env2)
		}
	})
}

// FuzzDecodeFrame feeds arbitrary bytes to the frame parser: no panics,
// no unbounded allocation from hostile length prefixes, and any accepted
// frame must survive a re-frame round trip.
func FuzzDecodeFrame(f *testing.F) {
	for _, env := range frameCorpus() {
		f.Add(AppendFrame(nil, env))
	}
	f.Add([]byte{FrameMagic})
	f.Add([]byte{FrameMagic, FrameVersion, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, b []byte) {
		env, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(b))
		}
		re := AppendFrame(nil, env)
		env2, _, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if env.Kind != env2.Kind || env.SendIndex != env2.SendIndex ||
			!bytes.Equal(env.Payload, env2.Payload) || !bytes.Equal(env.Piggyback, env2.Piggyback) {
			t.Fatalf("unstable frame round trip:\nfirst  %+v\nsecond %+v", env, env2)
		}
	})
}

// FuzzReadVec guards the shared piggyback vector codec against corrupt
// input: ReadVec must never panic nor allocate beyond its input size.
func FuzzReadVec(f *testing.F) {
	f.Add([]byte{0})
	f.Add(AppendVec(nil, []int64{1, -5, 1 << 40}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		v, n, err := ReadVec(b)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("ReadVec consumed %d of %d bytes", n, len(b))
		}
		re := AppendVec(nil, v)
		v2, _, err := ReadVec(re)
		if err != nil {
			t.Fatalf("re-decode of accepted vector failed: %v", err)
		}
		if len(v) != len(v2) {
			t.Fatalf("unstable vector round trip: %v vs %v", v, v2)
		}
		for i := range v {
			if v[i] != v2[i] {
				t.Fatalf("unstable vector round trip at %d: %v vs %v", i, v, v2)
			}
		}
	})
}
