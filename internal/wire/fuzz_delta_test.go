package wire

import (
	"testing"

	"windar/internal/vclock"
)

// FuzzReadVecDelta feeds arbitrary bytes to the delta decoder: it must
// never panic, never allocate beyond the base length, and never mutate
// the base — this is the exact path a corrupt TCP frame reaches through
// core.TDI's piggyback ingest.
func FuzzReadVecDelta(f *testing.F) {
	base := vclock.Vec{3, 1, 4, 1, 5, 9, 2, 6}
	f.Add(AppendVecDelta(nil, base, vclock.Vec{3, 1, 4, 2, 5, 9, 2, 7}))
	f.Add([]byte{VecDeltaMarker})
	f.Add([]byte{VecDeltaMarker, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add([]byte{VecDeltaMarker, 2, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, b []byte) {
		orig := base.Clone()
		v, n, err := ReadVecDelta(b, base)
		if !base.Equal(orig) {
			t.Fatalf("ReadVecDelta mutated the base: %v -> %v", orig, base)
		}
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if len(v) != len(base) {
			t.Fatalf("reconstructed length %d, base %d", len(v), len(base))
		}
		// An accepted delta must round-trip: re-encoding the
		// reconstruction against the same base reproduces it.
		re := AppendVecDelta(nil, base, v)
		v2, _, err := ReadVecDelta(re, base)
		if err != nil {
			t.Fatalf("re-decode of accepted delta failed: %v", err)
		}
		if !v2.Equal(v) {
			t.Fatalf("unstable delta round trip: %v vs %v", v, v2)
		}
	})
}

// FuzzVecDeltaRoundTrip drives the encoder from fuzzer-chosen vectors:
// every (base, cur) pair must encode to the size VecDeltaSize predicts,
// decode back to cur exactly, and dispatch correctly through ReadVecAny.
func FuzzVecDeltaRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(1), int64(9), int64(3))
	f.Add(int64(0), int64(0), int64(0), int64(0), int64(0), int64(0))
	f.Add(int64(-1), int64(1<<40), int64(7), int64(-1), int64(1<<40), int64(8))
	f.Fuzz(func(t *testing.T, b0, b1, b2, c0, c1, c2 int64) {
		base := vclock.Vec{b0, b1, b2}
		cur := vclock.Vec{c0, c1, c2}
		enc := AppendVecDelta(nil, base, cur)
		if got := VecDeltaSize(base, cur); got != len(enc) {
			t.Fatalf("VecDeltaSize=%d, encoded %d bytes", got, len(enc))
		}
		v, n, isDelta, err := ReadVecAny(enc, base)
		if err != nil {
			t.Fatalf("decode of fresh delta failed: %v", err)
		}
		if !isDelta || n != len(enc) {
			t.Fatalf("dispatch: isDelta=%v n=%d want delta, %d", isDelta, n, len(enc))
		}
		if !v.Equal(cur) {
			t.Fatalf("reconstructed %v, want %v (base %v)", v, cur, base)
		}
	})
}
