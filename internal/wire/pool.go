// Scratch pooling for the encode/decode paths. The send side has always
// reused buffers (AppendEncode, the framed writers); this file extends
// that discipline through decode, so a transport can encode into a
// pooled buffer, decode into a pooled envelope, and hand both back once
// the message is delivered — the steady state allocates only the payload
// the application keeps.
package wire

import (
	"encoding/binary"
	"sync"
)

// bufPool recycles encode scratch. Buffers grow to the largest envelope
// they ever carried and keep that capacity across uses.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// GetBuf returns a pooled byte buffer of length 0. Return it with
// PutBuf once the encoded bytes are no longer referenced.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a buffer obtained from GetBuf to the pool. Passing nil
// is a no-op.
func PutBuf(b *[]byte) {
	if b == nil {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// envPool recycles envelopes for the receive path: a transport decodes
// into a pooled envelope with DecodeInto, the harness recycles it after
// the delivery commits. The piggyback scratch rides along (pigBuf), so a
// recycled envelope decodes its next piggyback without allocating.
var envPool = sync.Pool{New: func() any { return new(Envelope) }}

// GetEnvelope returns a zeroed envelope from the pool, marked so that
// Recycle will accept it back. Envelopes constructed with a literal are
// never pooled — Recycle ignores them — so test fixtures and sender-side
// envelopes need no special handling.
func GetEnvelope() *Envelope {
	e := envPool.Get().(*Envelope)
	e.pooled = true
	return e
}

// CopyInto deep-copies src into dst, giving the receiver its own
// envelope with no slice shared with the sender: the piggyback lands in
// dst's reusable scratch, the payload is a fresh allocation (the same
// ownership contract as DecodeInto). It is the inline-delivery
// equivalent of an encode/decode round trip, minus the varint work; the
// queued fabric path and the TCP transport still round-trip every
// message through the wire format.
//
//windar:hotpath
func CopyInto(dst, src *Envelope) {
	pig, pooled := dst.pigBuf, dst.pooled
	*dst = *src
	dst.pigBuf, dst.pooled = pig, pooled
	if len(src.Piggyback) > 0 {
		dst.pigBuf = append(dst.pigBuf[:0], src.Piggyback...)
		dst.Piggyback = dst.pigBuf
	} else {
		dst.Piggyback = nil
	}
	if len(src.Payload) > 0 {
		p := make([]byte, len(src.Payload)) //windar:allow hotpath — payload is fresh by contract; receivers retain it past Recycle
		copy(p, src.Payload)
		dst.Payload = p
	} else {
		dst.Payload = nil
	}
}

// Recycle returns an envelope obtained from GetEnvelope to the pool,
// dropping every reference it holds (the payload is never reused — see
// DecodeInto). Safe to call on nil, on envelopes that did not come from
// the pool, and at most once per GetEnvelope: the pooled mark is cleared
// on the way in, so a double recycle is a no-op rather than a double
// free.
func Recycle(e *Envelope) {
	if e == nil || !e.pooled {
		return
	}
	pig := e.pigBuf[:0]
	*e = Envelope{pigBuf: pig}
	envPool.Put(e)
}

// DecodeInto parses an envelope previously produced by Encode into e,
// reusing e's piggyback scratch capacity. The payload is always a fresh
// allocation: receivers hand it to the application (or slice control
// payloads into long-lived protocol state), so its lifetime is unbounded
// while the envelope's ends at Recycle. On error e's contents are
// unspecified.
//
//windar:hotpath
func DecodeInto(e *Envelope, b []byte) error {
	if len(b) < 2 {
		return ErrTruncated
	}
	flags := b[1]
	pig, pooled := e.pigBuf, e.pooled
	*e = Envelope{Kind: Kind(b[0]), Resent: flags&flagResent != 0, pigBuf: pig, pooled: pooled}
	i := 2
	readInt := func() (int64, error) {
		v, n := binary.Varint(b[i:])
		if n <= 0 {
			return 0, ErrTruncated
		}
		i += n
		return v, nil
	}
	v, err := readInt()
	if err != nil {
		return err
	}
	e.From = int(v)
	if v, err = readInt(); err != nil {
		return err
	}
	e.To = int(v)
	if v, err = readInt(); err != nil {
		return err
	}
	e.Incarnation = int32(v)
	if v, err = readInt(); err != nil {
		return err
	}
	e.Tag = int32(v)
	if e.SendIndex, err = readInt(); err != nil {
		return err
	}
	// Piggyback: copied into the reused scratch. Protocols decode it
	// during Deliverable/OnDeliver and never retain the raw bytes, so
	// the scratch may be overwritten once the envelope is recycled.
	l, n := binary.Uvarint(b[i:])
	if n <= 0 {
		return ErrTruncated
	}
	i += n
	if uint64(len(b)-i) < l {
		return ErrTruncated
	}
	if l > 0 {
		e.pigBuf = append(e.pigBuf[:0], b[i:i+int(l)]...)
		e.Piggyback = e.pigBuf
		i += int(l)
	}
	// Payload: always fresh (see above).
	l, n = binary.Uvarint(b[i:])
	if n <= 0 {
		return ErrTruncated
	}
	i += n
	if uint64(len(b)-i) < l {
		return ErrTruncated
	}
	if l > 0 {
		e.Payload = make([]byte, l) //windar:allow hotpath — payload is fresh by contract; receivers retain it past Recycle
		copy(e.Payload, b[i:i+int(l)])
		i += int(l)
	}
	if flags&flagSpan != 0 {
		readUint := func() (uint64, error) {
			v, n := binary.Uvarint(b[i:])
			if n <= 0 {
				return 0, ErrTruncated
			}
			i += n
			return v, nil
		}
		if e.Span.Trace, err = readUint(); err != nil {
			return err
		}
		if e.Span.Span, err = readUint(); err != nil {
			return err
		}
		if e.Span.Parent, err = readUint(); err != nil {
			return err
		}
	}
	return nil
}
