package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"windar/layer"
)

func TestEnvelopeSpanRoundTrip(t *testing.T) {
	e := &Envelope{
		Kind: KindApp, From: 1, To: 2, SendIndex: 9,
		Piggyback: []byte{1, 2}, Payload: []byte("x"),
		Span: layer.SpanContext{Trace: 0xABCDEF, Span: 0x0001000200000003, Parent: 7},
	}
	got, err := Decode(Encode(e))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
	if EncodedSize(e) != len(Encode(e)) {
		t.Fatalf("EncodedSize %d != encoded %d", EncodedSize(e), len(Encode(e)))
	}
}

// TestSpanEncodingBackCompat pins the versioning contract: a zero span
// encodes byte-identically to the pre-span format, and a present span
// costs exactly one flag bit plus trailing bytes after the payload — so
// decoders that predate the flag parse every original field unchanged.
func TestSpanEncodingBackCompat(t *testing.T) {
	base := Envelope{
		Kind: KindApp, From: 3, To: 4, SendIndex: 11,
		Piggyback: []byte{9, 9}, Payload: []byte("payload"),
	}
	legacy := Encode(&base)

	zeroed := base
	zeroed.Span = layer.SpanContext{}
	if !bytes.Equal(Encode(&zeroed), legacy) {
		t.Fatal("zero span changed the encoding; old-format bytes must be reproduced exactly")
	}

	spanned := base
	spanned.Span = layer.SpanContext{Trace: 1, Span: 2, Parent: 3}
	enc := Encode(&spanned)
	if len(enc) <= len(legacy) {
		t.Fatalf("span encoding not appended: %d vs %d bytes", len(enc), len(legacy))
	}
	diffs := 0
	for i := range legacy {
		if enc[i] != legacy[i] {
			diffs++
			if enc[i] != legacy[i]|flagSpan {
				t.Fatalf("byte %d changed beyond the span flag: %#x vs %#x", i, enc[i], legacy[i])
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("span flipped %d prefix bytes, want exactly the flags byte", diffs)
	}
}

// TestEnvelopeSpanRoundTripProperty fuzzes envelopes across the span
// dimension, including the all-zero context and IDs using all 64 bits.
func TestEnvelopeSpanRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		Values: func(vals []reflect.Value, r *rand.Rand) {
			e := &Envelope{
				Kind:      Kind(1 + r.Intn(6)),
				From:      r.Intn(1024),
				To:        r.Intn(1024),
				SendIndex: r.Int63n(1 << 40),
			}
			if r.Intn(4) > 0 {
				e.Span = layer.SpanContext{
					Trace:  r.Uint64(),
					Span:   r.Uint64(),
					Parent: r.Uint64(),
				}
			}
			if n := r.Intn(64); n > 0 {
				e.Payload = make([]byte, n)
				r.Read(e.Payload)
			}
			vals[0] = reflect.ValueOf(e)
		},
	}
	f := func(e *Envelope) bool {
		got, err := Decode(Encode(e))
		return err == nil && reflect.DeepEqual(e, got) && EncodedSize(e) == len(Encode(e))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
