package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"windar/internal/vclock"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	e := &Envelope{
		Kind:        KindApp,
		From:        3,
		To:          7,
		Incarnation: 2,
		Tag:         42,
		SendIndex:   1001,
		Resent:      true,
		Piggyback:   []byte{1, 2, 3},
		Payload:     []byte("hello"),
	}
	b := Encode(e)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestEnvelopeRoundTripEmpty(t *testing.T) {
	e := &Envelope{Kind: KindRollback, From: 0, To: 1}
	got, err := Decode(Encode(e))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(e, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	f := func(from, to int16, inc, tag int32, idx int64, pig, pay []byte) bool {
		e := &Envelope{
			Kind: KindApp, From: int(from), To: int(to),
			Incarnation: inc, Tag: tag, SendIndex: idx,
			Piggyback: pig, Payload: pay,
		}
		return EncodedSize(e) == len(Encode(e))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	e := &Envelope{
		Kind: KindApp, From: 1, To: 2, SendIndex: 9,
		Piggyback: []byte{1, 2, 3, 4, 5}, Payload: []byte{6, 7, 8},
	}
	full := Encode(e)
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("Decode accepted truncation at %d/%d bytes", cut, len(full))
		}
	}
	if _, err := Decode(full); err != nil {
		t.Fatalf("Decode rejected full envelope: %v", err)
	}
}

func TestEnvelopeRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		Values: func(vals []reflect.Value, r *rand.Rand) {
			e := &Envelope{
				Kind:        Kind(1 + r.Intn(6)),
				From:        r.Intn(1024),
				To:          r.Intn(1024),
				Incarnation: int32(r.Intn(8)),
				Tag:         int32(r.Intn(1 << 20)),
				SendIndex:   r.Int63n(1 << 40),
				Resent:      r.Intn(2) == 0,
			}
			if n := r.Intn(64); n > 0 {
				e.Piggyback = make([]byte, n)
				r.Read(e.Piggyback)
			}
			if n := r.Intn(256); n > 0 {
				e.Payload = make([]byte, n)
				r.Read(e.Payload)
			}
			vals[0] = reflect.ValueOf(e)
		},
	}
	f := func(e *Envelope) bool {
		got, err := Decode(Encode(e))
		return err == nil && reflect.DeepEqual(e, got)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVecRoundTrip(t *testing.T) {
	v := vclock.Vec{0, 2, 2, 1}
	buf := AppendVec(nil, v)
	got, n, err := ReadVec(buf)
	if err != nil {
		t.Fatalf("ReadVec: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !got.Equal(v) {
		t.Fatalf("got %v, want %v", got, v)
	}
}

func TestVecRoundTripWithTrailingData(t *testing.T) {
	v := vclock.Vec{-5, 0, 1 << 40}
	buf := AppendVec(nil, v)
	withTail := append(buf, 0xAA, 0xBB)
	got, n, err := ReadVec(withTail)
	if err != nil {
		t.Fatalf("ReadVec: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d, want %d", n, len(buf))
	}
	if !got.Equal(v) {
		t.Fatalf("got %v, want %v", got, v)
	}
}

func TestVecRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(64)
			v := vclock.New(n)
			for i := range v {
				v[i] = r.Int63n(1<<50) - 1<<49
			}
			vals[0] = reflect.ValueOf(v)
		},
	}
	f := func(v vclock.Vec) bool {
		buf := AppendVec(nil, v)
		got, n, err := ReadVec(buf)
		return err == nil && n == len(buf) && got.Equal(v)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestReadVecTruncated(t *testing.T) {
	buf := AppendVec(nil, vclock.Vec{1, 2, 3})
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := ReadVec(buf[:cut]); err == nil {
			t.Fatalf("ReadVec accepted truncation at %d/%d", cut, len(buf))
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindApp:            "APP",
		KindRollback:       "ROLLBACK",
		KindResponse:       "RESPONSE",
		KindCkptAdvance:    "CKPT_ADVANCE",
		KindDeterminant:    "DETERMINANT",
		KindDeterminantAck: "DETERMINANT_ACK",
		Kind(99):           "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
}
