package wire

import (
	"errors"
	"testing"

	"windar/internal/vclock"
)

func TestVecDeltaRoundTrip(t *testing.T) {
	cases := []struct {
		name      string
		base, cur vclock.Vec
	}{
		{"no-change", vclock.Vec{1, 2, 3}, vclock.Vec{1, 2, 3}},
		{"one-change", vclock.Vec{1, 2, 3}, vclock.Vec{1, 7, 3}},
		{"all-change", vclock.Vec{0, 0, 0, 0}, vclock.Vec{4, 3, 2, 1}},
		{"negatives", vclock.Vec{-5, 0, 9}, vclock.Vec{-5, -1, 1 << 40}},
		{"single-rank", vclock.Vec{3}, vclock.Vec{4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := AppendVecDelta(nil, tc.base, tc.cur)
			if b[0] != VecDeltaMarker {
				t.Fatalf("delta does not start with marker: % x", b)
			}
			if got := VecDeltaSize(tc.base, tc.cur); got != len(b) {
				t.Fatalf("VecDeltaSize=%d, encoded %d bytes", got, len(b))
			}
			v, n, err := ReadVecDelta(b, tc.base)
			if err != nil {
				t.Fatalf("ReadVecDelta: %v", err)
			}
			if n != len(b) {
				t.Fatalf("consumed %d of %d bytes", n, len(b))
			}
			if !v.Equal(tc.cur) {
				t.Fatalf("reconstructed %v, want %v", v, tc.cur)
			}
			// Idempotence: absolute values mean applying the delta to the
			// post-state reproduces the post-state.
			v2, _, err := ReadVecDelta(b, tc.cur)
			if err != nil {
				t.Fatalf("re-apply: %v", err)
			}
			if !v2.Equal(tc.cur) {
				t.Fatalf("re-apply gave %v, want %v", v2, tc.cur)
			}
		})
	}
}

func TestVecDeltaDoesNotMutateBase(t *testing.T) {
	base := vclock.Vec{1, 2, 3}
	b := AppendVecDelta(nil, base, vclock.Vec{9, 2, 8})
	v, _, err := ReadVecDelta(b, base)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Equal(vclock.Vec{1, 2, 3}) {
		t.Fatalf("base mutated to %v", base)
	}
	v[0] = 77
	if base[0] == 77 {
		t.Fatal("returned vector aliases the base")
	}
}

func TestVecDeltaNoBase(t *testing.T) {
	b := AppendVecDelta(nil, vclock.Vec{0, 0}, vclock.Vec{1, 0})
	if _, _, err := ReadVecDelta(b, nil); !errors.Is(err, ErrNoDeltaBase) {
		t.Fatalf("nil base: got %v, want ErrNoDeltaBase", err)
	}
	if _, _, _, err := ReadVecAny(b, nil); !errors.Is(err, ErrNoDeltaBase) {
		t.Fatalf("ReadVecAny nil base: got %v, want ErrNoDeltaBase", err)
	}
}

func TestVecDeltaRejectsMalformed(t *testing.T) {
	base := vclock.Vec{0, 0, 0}
	bad := [][]byte{
		{},                              // empty
		{VecDeltaMarker},                // missing count
		{VecDeltaMarker, 9},             // count exceeds base length
		{VecDeltaMarker, 1},             // truncated pair
		{VecDeltaMarker, 1, 7, 2},       // index out of range
		{VecDeltaMarker, 2, 1, 2, 1, 4}, // indices not strictly increasing
		{VecDeltaMarker, 2, 1, 2, 0, 4}, // indices decreasing
		{VecDeltaMarker, 1, 0},          // index without value
		{0x01, 0x02},                    // not a delta at all
	}
	for i, b := range bad {
		if _, _, err := ReadVecDelta(b, base); err == nil {
			t.Errorf("case %d (% x): accepted malformed delta", i, b)
		}
	}
}

func TestReadVecAnyDispatch(t *testing.T) {
	base := vclock.Vec{1, 2, 3}
	cur := vclock.Vec{1, 5, 3}

	full := AppendVec(nil, cur)
	v, n, isDelta, err := ReadVecAny(full, base)
	if err != nil || isDelta || n != len(full) || !v.Equal(cur) {
		t.Fatalf("full dispatch: v=%v n=%d delta=%v err=%v", v, n, isDelta, err)
	}
	// Full vectors need no base.
	if v, _, _, err := ReadVecAny(full, nil); err != nil || !v.Equal(cur) {
		t.Fatalf("full without base: v=%v err=%v", v, err)
	}

	delta := AppendVecDelta(nil, base, cur)
	v, n, isDelta, err = ReadVecAny(delta, base)
	if err != nil || !isDelta || n != len(delta) || !v.Equal(cur) {
		t.Fatalf("delta dispatch: v=%v n=%d delta=%v err=%v", v, n, isDelta, err)
	}
}

func TestVecSizeMatchesAppendVec(t *testing.T) {
	for _, v := range []vclock.Vec{{0}, {1, 2, 3}, {-9, 1 << 50, 0, 7}} {
		if got, want := VecSize(v), len(AppendVec(nil, v)); got != want {
			t.Errorf("VecSize(%v)=%d, AppendVec produced %d", v, got, want)
		}
	}
}

func TestVecDeltaSmallerWhenFewChanges(t *testing.T) {
	// A 16-rank vector with one changed element: the delta must beat the
	// full encoding — this is the entire point of wire format v2.
	base := vclock.New(16)
	for i := range base {
		base[i] = int64(100 + i)
	}
	cur := base.Clone()
	cur[5]++
	if ds, fs := VecDeltaSize(base, cur), VecSize(cur); ds >= fs {
		t.Fatalf("delta %d bytes >= full %d bytes", ds, fs)
	}
}
